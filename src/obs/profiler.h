// Phase profiler: a TraceSink that turns the span stream into a
// per-phase self-time/IPC table and flamegraph-ready folded stacks.
//
// Two feeds, one report:
//
//  1. Spans. The profiler *is* a TraceSink — install it as hooks.trace
//     (optionally teeing to a JSONL sink via set_downstream) and every
//     completed span the engines already emit (network, preload, file,
//     rule) is buffered per emitting thread. Finish() reconstructs the
//     nesting per thread by timestamp containment (completion events
//     arrive child-before-parent within a thread) and aggregates
//     identical stacks into folded "root;child;leaf <self_us>" lines —
//     the input format of Brendan Gregg's flamegraph.pl and of any
//     speedscope-style viewer.
//  2. Phases. The corpus pipeline (and the audit driver) bracket their
//     sequential phases with BeginPhase/EndPhase. Each phase accumulates
//     wall time and — when perf_event_open is usable (perf_counters.h) —
//     hardware-counter deltas, so the table reports per-phase IPC,
//     branch-miss and cache-miss density. Phases are re-entrant across
//     threads (31 concurrent network pipelines all run a "preload"
//     phase): the window is open while any holder is inside, so
//     overlapping holders are counted once, not summed.
//
// Span roots are labeled by the span's "phase" string argument (the
// engines tag their spans; children inherit the parent's label), so the
// folded stacks group under the same phase names as the table even when
// worker threads emit spans the phase window cannot textually contain.
//
// Thread-safety: Write/BeginPhase/EndPhase take one internal mutex and
// do O(1) work plus an event append — cheap relative to the spans being
// profiled (file granularity, not line granularity). Finish() is meant
// to be called once, after the run quiesces.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/perf_counters.h"
#include "obs/trace.h"

namespace confanon::obs {

class PhaseProfiler : public TraceSink {
 public:
  struct Options {
    /// Try perf_event_open for per-phase hardware counters; the profiler
    /// degrades to wall-time-only when the syscall is unavailable.
    bool enable_perf_counters = true;
    /// Span-buffer cap: beyond this, further spans are dropped (counted
    /// in Profile::dropped_spans) so a pathological trace cannot exhaust
    /// memory. 1M spans ~ 64MB, far above any corpus profiled so far.
    std::size_t max_spans = 1u << 20;
  };

  // Default argument spelled as a delegating constructor: a `= {}`
  // default would need Options' member initializers before PhaseProfiler
  // is a complete type.
  PhaseProfiler() : PhaseProfiler(Options{}) {}
  explicit PhaseProfiler(Options options);

  // --- TraceSink ---------------------------------------------------------
  void Write(const TraceEvent& event) override;
  /// Optional downstream sink (e.g. a JsonlTraceSink): every event is
  /// forwarded after being recorded, so profiling and trace capture can
  /// share the single hooks.trace slot.
  void set_downstream(TraceSink* sink) { downstream_ = sink; }

  // --- Phase windows -----------------------------------------------------
  void BeginPhase(std::string_view phase);
  void EndPhase(std::string_view phase);

  /// RAII phase bracket; null profiler/tracer pointers are no-ops. When a
  /// tracer is given, a "phase:<name>" span tagged with the phase label
  /// is emitted on destruction so trace viewers see the window too.
  class ScopedPhase {
   public:
    ScopedPhase(PhaseProfiler* profiler, Tracer* tracer,
                std::string_view phase);
    ~ScopedPhase();
    ScopedPhase(const ScopedPhase&) = delete;
    ScopedPhase& operator=(const ScopedPhase&) = delete;

   private:
    PhaseProfiler* profiler_;
    Tracer* tracer_;
    std::string phase_;
    std::int64_t start_us_ = 0;
  };

  // --- Report ------------------------------------------------------------
  struct PhaseStats {
    std::string name;
    std::uint64_t wall_ns = 0;       // union of this phase's open windows
    std::uint64_t invocations = 0;   // BeginPhase calls
    PerfSample counters;             // deltas; valid only with perf access
    double Ipc() const { return counters.Ipc(); }
  };

  struct SpanStats {
    std::string path;            // "phase;parent;child" folded stack
    std::uint64_t total_us = 0;  // inclusive time of spans at this path
    std::uint64_t self_us = 0;   // total minus direct children
    std::uint64_t count = 0;
  };

  struct Profile {
    std::vector<PhaseStats> phases;  // in first-begin order
    std::vector<SpanStats> spans;    // sorted by path
    std::uint64_t total_self_us = 0;
    std::uint64_t dropped_spans = 0;
    bool perf_available = false;

    std::uint64_t PhaseWallNsTotal() const;
  };

  /// Reconstructs nesting and aggregates. Call after the profiled run
  /// has quiesced; still-open phase windows are closed at "now".
  Profile Finish();

  bool perf_available() const { return perf_.ok(); }

  /// Human-readable per-phase table (wall, share, invocations, IPC,
  /// branch/cache miss densities; "n/a" columns without perf access).
  static std::string RenderTable(const Profile& profile);
  /// Folded stacks, one "path weight" line per aggregated stack, weight =
  /// self-time in microseconds. Feed to flamegraph.pl.
  static void WriteFolded(const Profile& profile, std::ostream& out);

 private:
  struct SpanRecord {
    std::string name;
    std::string phase;  // from the event's "phase" str arg, may be empty
    std::int64_t ts_us = 0;
    std::int64_t dur_us = 0;
  };
  struct PhaseRecord {
    std::string name;
    std::uint64_t order = 0;       // first-begin rank
    std::uint64_t invocations = 0;
    int active = 0;                // re-entrancy depth across threads
    std::int64_t window_start_ns = 0;
    PerfSample window_baseline;
    std::uint64_t wall_ns = 0;
    PerfSample counters;           // accumulated deltas
  };

  Options options_;
  TraceSink* downstream_ = nullptr;
  PerfCounterGroup perf_;

  mutable std::mutex mutex_;
  std::map<std::thread::id, std::vector<SpanRecord>> spans_;
  std::size_t span_count_ = 0;
  std::uint64_t dropped_spans_ = 0;
  std::map<std::string, PhaseRecord, std::less<>> phases_;
  std::uint64_t next_phase_order_ = 0;
};

}  // namespace confanon::obs
