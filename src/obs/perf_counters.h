// Hardware performance counters via perf_event_open, with a null
// fallback everywhere the syscall is unavailable.
//
// A PerfCounterGroup opens four CPU-level events — cycles, instructions,
// branch misses, cache (LLC) misses — scoped to the calling process and
// inherited by threads it spawns afterwards, which is exactly the shape
// of the corpus pipeline: counters opened before a phase, worker threads
// spawned and joined inside it, counters read after. Reads never reset;
// callers difference two PerfSample readings to attribute counts to a
// phase (see profiler.h), which sidesteps the kernel restriction that
// inherited counters cannot be reliably reset.
//
// Degradation contract (the part that matters in CI containers and on
// non-Linux builds): if perf_event_open is missing (ENOSYS), forbidden
// (EPERM/EACCES under perf_event_paranoid or seccomp), or the PMU lacks
// an event (ENOENT/EINVAL/EOPNOTSUPP), the group silently becomes null —
// Open() returns false, ok() is false, Read() returns a zeroed sample
// with valid=false, and nothing is ever printed. Callers render "n/a"
// instead of IPC and move on.
#pragma once

#include <cstdint>

namespace confanon::obs {

/// One reading of the group. Raw event counts are cumulative since
/// Open(); difference two samples for a phase. time_enabled/time_running
/// expose kernel multiplexing (running < enabled means the PMU was
/// oversubscribed and counts are underestimates).
struct PerfSample {
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t branch_misses = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t time_enabled_ns = 0;
  std::uint64_t time_running_ns = 0;
  bool valid = false;

  /// Instructions per cycle; 0 when invalid or no cycles elapsed.
  double Ipc() const {
    return valid && cycles > 0
               ? static_cast<double>(instructions) / static_cast<double>(cycles)
               : 0.0;
  }

  /// Field-wise difference (this - earlier), for phase attribution.
  PerfSample Since(const PerfSample& earlier) const;
};

class PerfCounterGroup {
 public:
  PerfCounterGroup() = default;
  ~PerfCounterGroup();

  PerfCounterGroup(const PerfCounterGroup&) = delete;
  PerfCounterGroup& operator=(const PerfCounterGroup&) = delete;

  /// Opens the counters (enabled immediately, inherited by new threads).
  /// Returns false — leaving the group null — when the cycles or
  /// instructions event cannot be opened; branch/cache misses are
  /// optional extras (some PMUs lack them) and read as 0 when absent.
  bool Open();
  /// Closes all event fds; the group returns to the null state.
  void Close();

  bool ok() const { return fds_[0] >= 0 && fds_[1] >= 0; }

  /// Cumulative counts since Open(); {valid=false} when null.
  PerfSample Read() const;

  /// One cached probe of whether a minimal counter can be opened in this
  /// environment (false in most unprivileged containers).
  static bool Supported();

 private:
  // Slot order: cycles, instructions, branch-misses, cache-misses.
  static constexpr int kEvents = 4;
  int fds_[kEvents] = {-1, -1, -1, -1};
};

}  // namespace confanon::obs
