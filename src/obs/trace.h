// Chrome-trace-format tracing: RAII spans over a pluggable sink.
//
// Events follow the Trace Event Format consumed by chrome://tracing and
// Perfetto. The emitted file is line-oriented (one event object per
// line — JSONL with array framing, see JsonlTraceSink), so a partially
// written trace from a crashed run still loads.
//
// Design constraints, in order:
//   1. Zero cost when no sink is installed: ScopedTimer's constructor and
//      destructor reduce to one inline null check — no clock read, no
//      allocation. The per-line hot path of the anonymizer can carry
//      spans unconditionally.
//   2. Sinks are pluggable (file, in-memory for tests, discarding).
//   3. Events nest phase -> rule -> file by timestamp containment, the
//      way trace viewers expect.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace confanon::obs {

class LatencyHistogram;

/// One Trace Event Format record. `phase` is the format's single-letter
/// event type: 'X' complete (ts + dur), 'B'/'E' begin/end, 'i' instant,
/// 'C' counter, 'M' metadata.
struct TraceEvent {
  std::string name;
  const char* category = "confanon";
  char phase = 'X';
  std::int64_t ts_us = 0;
  std::int64_t dur_us = 0;  // 'X' only
  std::vector<std::pair<std::string, std::string>> str_args;
  std::vector<std::pair<std::string, std::int64_t>> num_args;
};

/// Receives every emitted event. Implementations must tolerate events
/// arriving out of timestamp order (viewers sort).
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void Write(const TraceEvent& event) = 0;
};

/// Writes events to a stream, one JSON object per line. The first line is
/// "[" and Close() appends "{}]", so the whole file is also one valid
/// JSON array — chrome://tracing and Perfetto load it directly, while
/// line-oriented tools can strip the framing and trailing commas and
/// parse each event independently.
///
/// Thread-safe: a mutex serializes writes, so one sink can be shared by
/// every worker of the parallel pipeline (each event line stays intact;
/// viewers sort by timestamp anyway).
class JsonlTraceSink : public TraceSink {
 public:
  explicit JsonlTraceSink(std::ostream& out);
  ~JsonlTraceSink() override;

  void Write(const TraceEvent& event) override;
  /// Terminates the array framing; idempotent, called by the destructor.
  void Close();

  std::size_t event_count() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return event_count_;
  }

 private:
  mutable std::mutex mutex_;
  std::ostream& out_;
  std::size_t event_count_ = 0;
  bool closed_ = false;
};

/// Front door for emitting events. Holds a non-owned sink pointer; a null
/// sink makes every operation a no-op. Timestamps are microseconds since
/// a process-wide epoch (Trace Event Format wants a consistent monotonic
/// epoch, not wall time) — shared by every Tracer so spans emitted by
/// different engines, the pipeline, and the global tracer land on one
/// comparable timeline. The phase profiler's nesting reconstruction and
/// multi-engine trace files both rely on this.
class Tracer {
 public:
  Tracer() : epoch_(ProcessEpoch()) {}

  /// The shared epoch: fixed at first use, identical for all tracers.
  static std::chrono::steady_clock::time_point ProcessEpoch();

  void set_sink(TraceSink* sink) { sink_ = sink; }
  TraceSink* sink() const { return sink_; }
  bool enabled() const { return sink_ != nullptr; }

  std::int64_t NowUs() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  void Emit(TraceEvent event);

  /// Emits an 'X' complete event spanning [ts_us, ts_us + dur_us]. A
  /// non-empty `phase` is attached as a "phase" string argument — the
  /// profiler (profiler.h) uses it to root folded stacks under the
  /// pipeline phase that emitted the span.
  void Complete(std::string name, std::int64_t ts_us, std::int64_t dur_us,
                std::string_view phase = {});
  /// Emits an 'i' instant event at now.
  void Instant(std::string name);
  /// Emits a 'C' counter sample at now.
  void CounterSample(std::string name, std::int64_t value);

 private:
  TraceSink* sink_ = nullptr;
  std::chrono::steady_clock::time_point epoch_;
};

/// Process-wide tracer for code that has no natural place to thread a
/// Tracer through (the generator, the leak detector). Disabled until a
/// sink is installed.
Tracer& GlobalTracer();
/// Installs (or clears, with nullptr) the global tracer's sink.
void InstallGlobalTraceSink(TraceSink* sink);

/// RAII span. When armed (tracer has a sink and/or a histogram is
/// attached) it reads the clock at construction and destruction, emits an
/// 'X' event named `name`, and records the elapsed nanoseconds into the
/// histogram. When idle it does nothing at all.
class ScopedTimer {
 public:
  ScopedTimer(Tracer* tracer, std::string name,
              LatencyHistogram* histogram = nullptr)
      : tracer_(tracer != nullptr && tracer->enabled() ? tracer : nullptr),
        histogram_(histogram) {
    if (tracer_ != nullptr || histogram_ != nullptr) {
      name_ = std::move(name);
      start_ = std::chrono::steady_clock::now();
      if (tracer_ != nullptr) start_us_ = tracer_->NowUs();
    }
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Attaches a string argument shown in the viewer's detail pane.
  void AddArg(std::string key, std::string value) {
    if (tracer_ != nullptr) str_args_.emplace_back(std::move(key), std::move(value));
  }
  void AddArg(std::string key, std::int64_t value) {
    if (tracer_ != nullptr) num_args_.emplace_back(std::move(key), value);
  }

  std::int64_t ElapsedNs() const {
    if (tracer_ == nullptr && histogram_ == nullptr) return 0;
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

  ~ScopedTimer();

 private:
  Tracer* tracer_;
  LatencyHistogram* histogram_;
  std::string name_;
  std::chrono::steady_clock::time_point start_{};
  std::int64_t start_us_ = 0;
  std::vector<std::pair<std::string, std::string>> str_args_;
  std::vector<std::pair<std::string, std::int64_t>> num_args_;
};

}  // namespace confanon::obs
