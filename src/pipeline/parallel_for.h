// Reusable worker-pool primitives for embarrassingly parallel stages.
//
// Three subsystems fan work out over an index space with the same shape:
// the corpus pipeline (files of one network), the network-set runner
// (whole networks), and the audit driver (files of a corpus under
// analysis). Each wants the identical idiom — a fixed pool of workers
// pulling fixed-size batches from an atomic cursor, with the first worker
// exception rethrown on the calling thread — so the idiom lives here once
// instead of being re-derived per call site.
//
// Determinism: the queue hands out disjoint index ranges, so as long as
// each worker writes only to slots of its own indices, the aggregate
// result is independent of scheduling. Nothing here synchronizes user
// state beyond the cursor; that is the caller's contract.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>

namespace confanon::pipeline {

/// Clamps a requested worker count to something sensible for `items`
/// units of work: <=0 means "ask the hardware", and more workers than
/// items just idle.
int ResolveWorkerCount(int requested, std::size_t items);

/// An atomic batch cursor over [0, count). Thread-safe; each Next() hands
/// out a disjoint half-open range.
class WorkQueue {
 public:
  WorkQueue(std::size_t count, std::size_t batch)
      : count_(count), batch_(batch == 0 ? 1 : batch) {}

  /// Claims the next batch. Returns false when the range is exhausted.
  bool Next(std::size_t& begin, std::size_t& end) {
    begin = cursor_.fetch_add(batch_, std::memory_order_relaxed);
    if (begin >= count_) return false;
    end = begin + batch_ < count_ ? begin + batch_ : count_;
    return true;
  }

 private:
  std::size_t count_;
  std::size_t batch_;
  std::atomic<std::size_t> cursor_{0};
};

/// Runs `worker(worker_index)` on `threads` workers. With threads <= 1 the
/// worker runs inline on the calling thread (no pool, no synchronization
/// cost). Exceptions are caught per worker and the first one is rethrown
/// on the calling thread after the join.
void RunWorkers(int threads, const std::function<void(int)>& worker);

}  // namespace confanon::pipeline
