#include "pipeline/pipeline.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "core/anonymizer.h"
#include "core/hash_batcher.h"
#include "obs/profiler.h"
#include "obs/provenance.h"
#include "passlist/passlist.h"
#include "pipeline/parallel_for.h"
#include "util/strings.h"
#include "verify/verify.h"

namespace confanon::pipeline {

namespace {

/// One worker's engines: an IOS and a JunOS anonymizer (built by the
/// context's dialect factories) over the shared session state. Each
/// worker owns its pair so reports, leak records and per-line
/// observability buffers are single-writer; only the state is shared
/// (and internally synchronized).
struct EngineWorker {
  EngineWorker(const core::ServiceContext& context,
               const core::Session& session)
      : ios(context.MakeEngine(core::ConfigDialect::kIos, session)),
        junos(context.MakeEngine(core::ConfigDialect::kJunos, session)) {}

  core::AnonymizerEngine& ForDialect(FileDialect dialect) {
    return dialect == FileDialect::kJunos ? *junos : *ios;
  }

  std::unique_ptr<core::AnonymizerEngine> ios;
  std::unique_ptr<core::AnonymizerEngine> junos;
};

}  // namespace

std::shared_ptr<core::ServiceContext> MakeServiceContext(
    core::ServiceOptions options) {
  auto context = std::make_shared<core::ServiceContext>(std::move(options));
  // core registered the IOS factory; the JunOS engine links against core,
  // so its factory is registered here — the lowest layer that sees it.
  context->RegisterEngineFactory(
      core::ConfigDialect::kJunos,
      [](const core::AnonymizerOptions& engine_options,
         std::shared_ptr<core::NetworkState> state) {
        return std::make_unique<junos::JunosAnonymizer>(
            junos::JunosAnonymizerOptions{engine_options.salt,
                                          engine_options.regex_form,
                                          engine_options.strip_comments,
                                          engine_options.extra_pass_list},
            std::move(state));
      });
  // Static policy verification (src/verify) happens here — the lowest
  // layer that links both dialect engines and thus can model the full
  // cross-dialect policy. The verdict makes CreateSession throw
  // core::PolicyError on a provably leaky policy.
  if (context->options().verify_policy) {
    context->SetPolicyVerdict(verify::VerdictOf(
        verify::VerifyEngineOptions(context->options().base)));
  }
  return context;
}

CorpusPipeline::CorpusPipeline(
    std::shared_ptr<const core::ServiceContext> context,
    std::shared_ptr<core::Session> session)
    : context_(std::move(context)),
      session_(std::move(session)),
      per_call_preload_(true) {
  install_hooks(context_->hooks());
}

CorpusPipeline::CorpusPipeline(PipelineOptions options)
    : context_(MakeServiceContext(std::move(options))),
      session_(context_->CreateSession()),
      per_call_preload_(false) {}

int CorpusPipeline::ResolveThreads(std::size_t file_count) const {
  return context_->ResolveThreads(file_count);
}

FileDialect CorpusPipeline::ResolveDialect(
    const config::ConfigFile& file) const {
  const FileDialect dialect = context_->options().dialect;
  return dialect == FileDialect::kAuto ? core::DetectDialect(file) : dialect;
}

void CorpusPipeline::PreloadCorpus(
    const std::vector<config::ConfigFile>& files,
    const std::vector<FileDialect>& dialects) {
  core::NetworkState& state = *session_->state();
  // Options form: one preload per session (the sequential engine's
  // corpus-pass semantics). Session form: every call preloads its own
  // corpus — Preload is idempotent per address, and a per-request
  // preload is exactly what the standalone streaming AnonymizeFile path
  // does, which keeps request streams byte-identical to it.
  if (!per_call_preload_ &&
      state.preloaded.load(std::memory_order_acquire)) {
    return;
  }
  const bool i7_enabled = !context_->options().base.disabled_rules.contains(
      core::rules::kSubnetPreload);

  // JunOS files always contribute (the JunOS engine preloads
  // unconditionally — its rule pack has no toggles); IOS files
  // contribute under rule I7, with the sequential engine's accounting.
  std::vector<net::Ipv4Address> addresses;
  std::size_t ios_count = 0;
  bool any_ios = false;
  for (std::size_t i = 0; i < files.size(); ++i) {
    if (dialects[i] == FileDialect::kJunos) {
      junos::JunosAnonymizer::CollectFileAddresses(files[i], addresses);
    } else if (i7_enabled) {
      any_ios = true;
      const std::size_t before = addresses.size();
      core::Anonymizer::CollectFileAddresses(files[i], addresses);
      ios_count += addresses.size() - before;
    }
  }
  if (i7_enabled && any_ios) {
    report_.CountRule(core::rules::kSubnetPreload, ios_count);
    if (hooks_.metrics != nullptr) {
      hooks_.metrics
          ->CounterNamed(std::string("rule.") + core::rules::kSubnetPreload)
          .Add(ios_count);
    }
  }
  state.ip.Preload(std::move(addresses));
  state.preloaded.store(true, std::memory_order_release);
}

std::vector<config::ConfigFile> CorpusPipeline::AnonymizeCorpus(
    const std::vector<config::ConfigFile>& files) {
  std::vector<FileDialect> dialects(files.size());

  // Phase 1: dialect routing + corpus-wide preload. All RNG consumption
  // happens here; phase 2 only reads the trie's memo.
  {
    obs::PhaseProfiler::ScopedPhase phase(hooks_.profiler, &tracer_,
                                          "preload");
    for (std::size_t i = 0; i < files.size(); ++i) {
      dialects[i] = ResolveDialect(files[i]);
    }
    PreloadCorpus(files, dialects);
  }

  // Phase 1.5: prewarm the shared hash memo in full 4-lane batches.
  // Per-file miss counts are small, so without this the workers'
  // HashBatchers would mostly flush dummy-padded remainders. The word
  // set is an over-approximation of what the rule packs hash — tokens
  // are pure functions of (salt, word), so extra memo entries cannot
  // change a byte of output.
  {
    obs::PhaseProfiler::ScopedPhase phase(hooks_.profiler, &tracer_,
                                          "prewarm");
    std::vector<std::string_view> candidates;
    const passlist::PassList ios_list = passlist::PassList::Builtin();
    const passlist::PassList junos_list = junos::JunosPassList();
    for (std::size_t i = 0; i < files.size(); ++i) {
      if (dialects[i] == FileDialect::kJunos) {
        junos::JunosAnonymizer::CollectHashCandidates(files[i], junos_list,
                                                      candidates);
      } else {
        core::Anonymizer::CollectHashCandidates(files[i], ios_list,
                                                candidates);
      }
    }
    core::PrewarmHashMemo(session_->state()->hasher, candidates,
                          hooks_.metrics);
  }

  // Per-file provenance buffers, merged in corpus order at join so the
  // log is independent of which worker processed which file.
  const bool collect_provenance = hooks_.provenance != nullptr;
  std::vector<obs::ProvenanceLog> file_provenance(
      collect_provenance ? files.size() : 0);

  // With rule I7 disabled, IOS addresses enter the trie on demand during
  // file processing — an order-dependent operation. Fall back to one
  // worker so the output still matches the sequential engine exactly.
  const bool i7_enabled = !context_->options().base.disabled_rules.contains(
      core::rules::kSubnetPreload);
  const int threads = i7_enabled ? ResolveThreads(files.size()) : 1;
  std::vector<config::ConfigFile> out(files.size());

  std::vector<std::unique_ptr<EngineWorker>> workers;
  workers.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    workers.push_back(std::make_unique<EngineWorker>(*context_, *session_));
  }

  // Phase 2: parallel per-file anonymization. The phase window spans the
  // whole pool (open while any worker runs); at threads <= 1 RunWorkers
  // executes inline, so the four phase windows tile the call exactly.
  WorkQueue queue(files.size(), context_->options().batch_size);
  {
    obs::PhaseProfiler::ScopedPhase phase(hooks_.profiler, &tracer_,
                                          "anonymize");
    RunWorkers(threads, [&](int worker_index) {
      EngineWorker& worker = *workers[static_cast<std::size_t>(worker_index)];
      obs::Hooks worker_hooks = hooks_;
      worker_hooks.provenance = nullptr;
      worker.ios->install_hooks(worker_hooks);
      worker.junos->install_hooks(worker_hooks);
      std::size_t begin = 0;
      std::size_t end = 0;
      while (queue.Next(begin, end)) {
        for (std::size_t i = begin; i < end; ++i) {
          core::AnonymizerEngine& engine = worker.ForDialect(dialects[i]);
          if (collect_provenance) {
            obs::Hooks per_file = worker_hooks;
            per_file.provenance = &file_provenance[i];
            engine.install_hooks(per_file);
          }
          out[i] = engine.AnonymizeFile(files[i]);
        }
      }
      worker.ios->SyncMetrics();
      worker.junos->SyncMetrics();
    });
  }

  // Deterministic join: merge per-worker reports/leak records (sums and
  // set unions commute) and concatenate provenance in corpus order.
  {
    obs::PhaseProfiler::ScopedPhase phase(hooks_.profiler, &tracer_, "join");
    for (const auto& worker : workers) {
      report_.Merge(worker->ios->report());
      report_.Merge(worker->junos->report());
      leak_record_.Merge(worker->ios->leak_record());
      leak_record_.Merge(worker->junos->leak_record());
    }
    if (collect_provenance) {
      for (const obs::ProvenanceLog& log : file_provenance) {
        for (const obs::ProvenanceEntry& entry : log.entries()) {
          hooks_.provenance->Record(entry);
        }
      }
    }
    SyncSharedMetrics();
  }

  // Phase 3 (opt-in): fingerprint defense. Decoy insertion is sequential
  // and corpus-global — it pads equivalence classes across files — so it
  // runs after the join, on the assembled output.
  if (context_->options().defense.k > 1) {
    obs::PhaseProfiler::ScopedPhase phase(hooks_.profiler, &tracer_,
                                          "defend");
    const auto start = std::chrono::steady_clock::now();
    defense::DefenseResult defended = defense::DefendCorpus(
        out, context_->options().defense, session_->salt());
    defense_report_ = defended.report;
    decoy_manifest_ = std::move(defended.manifest);
    session_->MergeDefense(defense_report_.Summary());
    if (hooks_.metrics != nullptr) {
      hooks_.metrics->CounterNamed("defense.decoy_lines")
          .Add(defense_report_.decoy_lines);
      hooks_.metrics->GaugeNamed("defense.target_k")
          .Set(static_cast<std::int64_t>(defense_report_.target_k));
      hooks_.metrics->GaugeNamed("defense.achieved_k")
          .Set(static_cast<std::int64_t>(defense_report_.achieved_k));
      hooks_.metrics->GaugeNamed("defense.overhead_pct")
          .Set(static_cast<std::int64_t>(
              defense_report_.Overhead() * 100.0 + 0.5));
      hooks_.metrics->HistogramNamed("defense.pass_ns")
          .Record(static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - start)
                  .count()));
    }
  } else {
    defense_report_ = {};
    decoy_manifest_ = {};
  }
  return out;
}

void CorpusPipeline::SyncSharedMetrics() {
  if (hooks_.metrics == nullptr) return;
  const auto sync = [&](const char* name, std::uint64_t current,
                        std::uint64_t& base) {
    if (current > base) {
      hooks_.metrics->CounterNamed(name).Add(current - base);
      base = current;
    }
  };
  core::NetworkState& state = *session_->state();
  const ipanon::IpAnonymizer::Stats ip_stats = state.ip.stats();
  sync("ipanon.cache_hits", ip_stats.cache_hits, synced_ip_.cache_hits);
  sync("ipanon.cache_misses", ip_stats.cache_misses, synced_ip_.cache_misses);
  sync("ipanon.collision_walks", ip_stats.collision_walks,
       synced_ip_.collision_walks);
  sync("ipanon.preloaded_addresses", ip_stats.preloaded, synced_ip_.preloaded);
  hooks_.metrics->GaugeNamed("ipanon.trie_nodes")
      .Set(static_cast<std::int64_t>(state.ip.NodeCount()));
}

void CorpusPipeline::ExportKnownEntities(std::ostream& out) {
  // A throwaway engine over the shared state renders the groupings; the
  // mappings live in the state, so any engine emits the same lines.
  const auto exporter =
      context_->MakeEngine(core::ConfigDialect::kIos, *session_);
  exporter->ExportKnownEntities(out);
}

std::vector<NetworkOutput> AnonymizeNetworkSet(
    const std::vector<NetworkTask>& tasks,
    const core::ServiceContext& set_context) {
  std::vector<NetworkOutput> out(tasks.size());
  if (tasks.empty()) return out;

  // ResolveThreads with no item clamp: the raw budget.
  const int total = set_context.ResolveThreads(0);
  // Slots run whole networks concurrently; each network's own pipeline
  // gets a share of the remaining budget (so total concurrency stays
  // ~= the budget whichever way the work is shaped).
  const int slots = ResolveWorkerCount(total, tasks.size());

  // Shard-aware partitioning: a network's cost tracks its byte size, not
  // its file count (the paper's corpora mix backbone routers at hundreds
  // of KB with access switches at a few KB). Schedule largest-bytes
  // first (LPT) so the straggler network starts earliest, and give each
  // network an inner-thread share proportional to its byte weight among
  // `slots` average concurrent networks.
  std::vector<std::uint64_t> task_bytes(tasks.size(), 0);
  std::uint64_t set_bytes = 0;
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    for (const config::ConfigFile& file : tasks[i].files) {
      task_bytes[i] += file.TextBytes();
    }
    set_bytes += task_bytes[i];
  }
  std::vector<std::size_t> order(tasks.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return task_bytes[a] > task_bytes[b];
                   });
  const auto inner_share = [&](std::size_t i) {
    if (set_bytes == 0) return std::max(1, total / slots);
    const auto weighted = static_cast<int>(
        static_cast<std::uint64_t>(total) * slots * task_bytes[i] /
        set_bytes);
    return std::clamp(weighted, 1, total);
  };

  WorkQueue queue(tasks.size(), 1);
  RunWorkers(slots, [&](int) {
    std::size_t begin = 0;
    std::size_t end = 0;
    while (queue.Next(begin, end)) {
      for (std::size_t rank = begin; rank < end; ++rank) {
        const std::size_t i = order[rank];
        core::ServiceOptions options = tasks[i].options;
        if (options.threads <= 0) options.threads = inner_share(i);
        auto task_context = MakeServiceContext(std::move(options));
        task_context->install_hooks(set_context.hooks());
        CorpusPipeline pipe(task_context, task_context->CreateSession());
        out[i].files = pipe.AnonymizeCorpus(tasks[i].files);
        out[i].report = pipe.report();
        out[i].leak_record = pipe.leak_record();
        out[i].defense = pipe.defense_report().Summary();
      }
    }
  });
  return out;
}

std::vector<NetworkOutput> AnonymizeNetworkSet(
    const std::vector<NetworkTask>& tasks,
    const NetworkSetOptions& set_options) {
  core::ServiceOptions options;
  options.threads = set_options.threads;
  core::ServiceContext set_context(std::move(options));
  obs::Hooks hooks;
  hooks.metrics = set_options.metrics;
  hooks.trace = set_options.trace;
  hooks.profiler = set_options.profiler;
  set_context.install_hooks(hooks);
  return AnonymizeNetworkSet(tasks, set_context);
}

}  // namespace confanon::pipeline
