#include "pipeline/pipeline.h"

#include <algorithm>
#include <thread>

#include "core/anonymizer.h"
#include "core/hash_batcher.h"
#include "obs/profiler.h"
#include "obs/provenance.h"
#include "passlist/passlist.h"
#include "pipeline/parallel_for.h"
#include "util/strings.h"

namespace confanon::pipeline {

namespace {

/// One worker's engines: an IOS and a JunOS anonymizer over the shared
/// NetworkState. Each worker owns its pair so reports, leak records and
/// per-line observability buffers are single-writer; only the state is
/// shared (and internally synchronized).
struct EngineWorker {
  EngineWorker(const PipelineOptions& options,
               std::shared_ptr<core::NetworkState> state)
      : ios(options.base, state),
        junos(junos::JunosAnonymizerOptions{options.base.salt,
                                            options.base.regex_form,
                                            options.base.strip_comments},
              std::move(state)) {}

  core::AnonymizerEngine& ForDialect(FileDialect dialect) {
    return dialect == FileDialect::kJunos
               ? static_cast<core::AnonymizerEngine&>(junos)
               : static_cast<core::AnonymizerEngine&>(ios);
  }

  core::Anonymizer ios;
  junos::JunosAnonymizer junos;
};

}  // namespace

FileDialect DetectDialect(const config::ConfigFile& file) {
  for (const std::string& line : file.lines()) {
    const std::string_view trimmed = util::Trim(line);
    if (trimmed.empty()) continue;
    if (trimmed.back() == '{' || trimmed == "}") return FileDialect::kJunos;
  }
  return FileDialect::kIos;
}

CorpusPipeline::CorpusPipeline(PipelineOptions options)
    : options_(std::move(options)),
      state_(std::make_shared<core::NetworkState>(options_.base.salt)) {
  if (options_.batch_size == 0) options_.batch_size = 1;
}

int CorpusPipeline::ResolveThreads(std::size_t file_count) const {
  return ResolveWorkerCount(options_.threads, file_count);
}

FileDialect CorpusPipeline::ResolveDialect(
    const config::ConfigFile& file) const {
  return options_.dialect == FileDialect::kAuto ? DetectDialect(file)
                                                : options_.dialect;
}

void CorpusPipeline::PreloadCorpus(
    const std::vector<config::ConfigFile>& files,
    const std::vector<FileDialect>& dialects) {
  if (state_->preloaded.load(std::memory_order_acquire)) return;
  const bool i7_enabled =
      !options_.base.disabled_rules.contains(core::rules::kSubnetPreload);

  // JunOS files always contribute (the JunOS engine preloads
  // unconditionally — its rule pack has no toggles); IOS files
  // contribute under rule I7, with the sequential engine's accounting.
  std::vector<net::Ipv4Address> addresses;
  std::size_t ios_count = 0;
  bool any_ios = false;
  for (std::size_t i = 0; i < files.size(); ++i) {
    if (dialects[i] == FileDialect::kJunos) {
      junos::JunosAnonymizer::CollectFileAddresses(files[i], addresses);
    } else if (i7_enabled) {
      any_ios = true;
      const std::size_t before = addresses.size();
      core::Anonymizer::CollectFileAddresses(files[i], addresses);
      ios_count += addresses.size() - before;
    }
  }
  if (i7_enabled && any_ios) {
    report_.CountRule(core::rules::kSubnetPreload, ios_count);
    if (hooks_.metrics != nullptr) {
      hooks_.metrics
          ->CounterNamed(std::string("rule.") + core::rules::kSubnetPreload)
          .Add(ios_count);
    }
  }
  state_->ip.Preload(std::move(addresses));
  state_->preloaded.store(true, std::memory_order_release);
}

std::vector<config::ConfigFile> CorpusPipeline::AnonymizeCorpus(
    const std::vector<config::ConfigFile>& files) {
  std::vector<FileDialect> dialects(files.size());

  // Phase 1: dialect routing + corpus-wide preload. All RNG consumption
  // happens here; phase 2 only reads the trie's memo.
  {
    obs::PhaseProfiler::ScopedPhase phase(hooks_.profiler, &tracer_,
                                          "preload");
    for (std::size_t i = 0; i < files.size(); ++i) {
      dialects[i] = ResolveDialect(files[i]);
    }
    PreloadCorpus(files, dialects);
  }

  // Phase 1.5: prewarm the shared hash memo in full 4-lane batches.
  // Per-file miss counts are small, so without this the workers'
  // HashBatchers would mostly flush dummy-padded remainders. The word
  // set is an over-approximation of what the rule packs hash — tokens
  // are pure functions of (salt, word), so extra memo entries cannot
  // change a byte of output.
  {
    obs::PhaseProfiler::ScopedPhase phase(hooks_.profiler, &tracer_,
                                          "prewarm");
    std::vector<std::string_view> candidates;
    const passlist::PassList ios_list = passlist::PassList::Builtin();
    const passlist::PassList junos_list = junos::JunosPassList();
    for (std::size_t i = 0; i < files.size(); ++i) {
      if (dialects[i] == FileDialect::kJunos) {
        junos::JunosAnonymizer::CollectHashCandidates(files[i], junos_list,
                                                      candidates);
      } else {
        core::Anonymizer::CollectHashCandidates(files[i], ios_list,
                                                candidates);
      }
    }
    core::PrewarmHashMemo(state_->hasher, candidates, hooks_.metrics);
  }

  // Per-file provenance buffers, merged in corpus order at join so the
  // log is independent of which worker processed which file.
  const bool collect_provenance = hooks_.provenance != nullptr;
  std::vector<obs::ProvenanceLog> file_provenance(
      collect_provenance ? files.size() : 0);

  // With rule I7 disabled, IOS addresses enter the trie on demand during
  // file processing — an order-dependent operation. Fall back to one
  // worker so the output still matches the sequential engine exactly.
  const bool i7_enabled =
      !options_.base.disabled_rules.contains(core::rules::kSubnetPreload);
  const int threads = i7_enabled ? ResolveThreads(files.size()) : 1;
  std::vector<config::ConfigFile> out(files.size());

  std::vector<std::unique_ptr<EngineWorker>> workers;
  workers.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    workers.push_back(std::make_unique<EngineWorker>(options_, state_));
  }

  // Phase 2: parallel per-file anonymization. The phase window spans the
  // whole pool (open while any worker runs); at threads <= 1 RunWorkers
  // executes inline, so the four phase windows tile the call exactly.
  WorkQueue queue(files.size(), options_.batch_size);
  {
    obs::PhaseProfiler::ScopedPhase phase(hooks_.profiler, &tracer_,
                                          "anonymize");
    RunWorkers(threads, [&](int worker_index) {
      EngineWorker& worker = *workers[static_cast<std::size_t>(worker_index)];
      obs::Hooks worker_hooks = hooks_;
      worker_hooks.provenance = nullptr;
      worker.ios.install_hooks(worker_hooks);
      worker.junos.install_hooks(worker_hooks);
      std::size_t begin = 0;
      std::size_t end = 0;
      while (queue.Next(begin, end)) {
        for (std::size_t i = begin; i < end; ++i) {
          core::AnonymizerEngine& engine = worker.ForDialect(dialects[i]);
          if (collect_provenance) {
            obs::Hooks per_file = worker_hooks;
            per_file.provenance = &file_provenance[i];
            engine.install_hooks(per_file);
          }
          out[i] = engine.AnonymizeFile(files[i]);
        }
      }
      worker.ios.SyncMetrics();
      worker.junos.SyncMetrics();
    });
  }

  // Deterministic join: merge per-worker reports/leak records (sums and
  // set unions commute) and concatenate provenance in corpus order.
  {
    obs::PhaseProfiler::ScopedPhase phase(hooks_.profiler, &tracer_, "join");
    for (const auto& worker : workers) {
      report_.Merge(worker->ios.report());
      report_.Merge(worker->junos.report());
      leak_record_.Merge(worker->ios.leak_record());
      leak_record_.Merge(worker->junos.leak_record());
    }
    if (collect_provenance) {
      for (const obs::ProvenanceLog& log : file_provenance) {
        for (const obs::ProvenanceEntry& entry : log.entries()) {
          hooks_.provenance->Record(entry);
        }
      }
    }
    SyncSharedMetrics();
  }
  return out;
}

void CorpusPipeline::SyncSharedMetrics() {
  if (hooks_.metrics == nullptr) return;
  const auto sync = [&](const char* name, std::uint64_t current,
                        std::uint64_t& base) {
    if (current > base) {
      hooks_.metrics->CounterNamed(name).Add(current - base);
      base = current;
    }
  };
  const ipanon::IpAnonymizer::Stats ip_stats = state_->ip.stats();
  sync("ipanon.cache_hits", ip_stats.cache_hits, synced_ip_.cache_hits);
  sync("ipanon.cache_misses", ip_stats.cache_misses, synced_ip_.cache_misses);
  sync("ipanon.collision_walks", ip_stats.collision_walks,
       synced_ip_.collision_walks);
  sync("ipanon.preloaded_addresses", ip_stats.preloaded, synced_ip_.preloaded);
  hooks_.metrics->GaugeNamed("ipanon.trie_nodes")
      .Set(static_cast<std::int64_t>(state_->ip.NodeCount()));
}

void CorpusPipeline::ExportKnownEntities(std::ostream& out) {
  // A throwaway engine over the shared state renders the groupings; the
  // mappings live in the state, so any engine emits the same lines.
  core::Anonymizer exporter(options_.base, state_);
  exporter.ExportKnownEntities(out);
}

std::vector<NetworkOutput> AnonymizeNetworkSet(
    const std::vector<NetworkTask>& tasks,
    const NetworkSetOptions& set_options) {
  std::vector<NetworkOutput> out(tasks.size());
  if (tasks.empty()) return out;

  int total = set_options.threads;
  if (total <= 0) {
    total = static_cast<int>(std::thread::hardware_concurrency());
    if (total <= 0) total = 1;
  }
  // Slots run whole networks concurrently; each network's own pipeline
  // gets an equal share of the remaining budget (so total concurrency
  // stays ~= the budget whichever way the work is shaped).
  const int slots = ResolveWorkerCount(total, tasks.size());
  const int inner = std::max(1, total / slots);

  WorkQueue queue(tasks.size(), 1);
  RunWorkers(slots, [&](int) {
    std::size_t begin = 0;
    std::size_t end = 0;
    while (queue.Next(begin, end)) {
      for (std::size_t i = begin; i < end; ++i) {
        PipelineOptions options = tasks[i].options;
        if (options.threads <= 0) options.threads = inner;
        CorpusPipeline pipe(std::move(options));
        obs::Hooks hooks;
        hooks.metrics = set_options.metrics;
        hooks.trace = set_options.trace;
        hooks.profiler = set_options.profiler;
        if (hooks.any()) pipe.install_hooks(hooks);
        out[i].files = pipe.AnonymizeCorpus(tasks[i].files);
        out[i].report = pipe.report();
        out[i].leak_record = pipe.leak_record();
      }
    }
  });
  return out;
}

}  // namespace confanon::pipeline
