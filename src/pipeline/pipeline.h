// Parallel corpus pipeline over the Session/Context API.
//
// Anonymizing a network is embarrassingly parallel *after* the corpus-wide
// address preload: rule I7 inserts every address (sorted) into the IP trie
// up front, which exhausts all randomness consumption — every subsequent
// Map() is a memo hit, every word hash is a pure function of (salt, word),
// and the ASN/community permutations are immutable after seeding. So the
// pipeline runs in two phases:
//
//   1. Preload (sequential): collect every address in the corpus — using
//      the right tokenizer per file dialect — and preload the shared trie.
//   2. Files (parallel): a fixed-size worker pool pulls fixed-size batches
//      of file indices from an atomic cursor. Each worker owns one IOS and
//      one JunOS engine (built by the context's dialect factories) over
//      the ONE shared core::Session, and routes each file to the engine
//      matching its dialect.
//
// Determinism guarantee: output files land at their input index, and the
// per-file transformation depends only on the shared (preloaded,
// interleaving-independent) state — so the corpus output is byte-identical
// to the sequential path for the same salt, for any thread count. Reports
// and leak records are merged at join (commutative sums / set unions), and
// provenance is collected per file and concatenated in corpus order, so
// those are deterministic too. See docs/PIPELINE.md.
//
// Public API shape (see core/session.h): a process-lifetime
// core::ServiceContext (options, pass list, dialect engine factories,
// hooks, thread budget) plus a per-network/per-tenant core::Session
// (salted NetworkState). The pipeline is a *driver* over those two
// objects; batch tools build both per run, the daemon keeps sessions
// alive across requests.
#pragma once

#include <cstddef>
#include <memory>
#include <ostream>
#include <vector>

#include "config/document.h"
#include "core/anonymizer.h"
#include "core/engine.h"
#include "core/leak_detector.h"
#include "core/network_state.h"
#include "core/report.h"
#include "core/session.h"
#include "defense/defense.h"
#include "junos/anonymizer.h"
#include "obs/hooks.h"
#include "obs/trace.h"

namespace confanon::pipeline {

/// DEPRECATED alias: dialect routing now lives in core::ConfigDialect so
/// the Session/Context API can route files without linking the pipeline.
/// Kept for one release; new code should spell core::ConfigDialect.
using FileDialect = core::ConfigDialect;

/// DEPRECATED forwarder for core::DetectDialect (the brace-structure
/// heuristic); kept for one release.
inline FileDialect DetectDialect(const config::ConfigFile& file) {
  return core::DetectDialect(file);
}

/// DEPRECATED alias: the consolidated options struct consumed by
/// core::ServiceContext is core::ServiceOptions — one struct for the
/// fields previously duplicated between PipelineOptions and
/// NetworkSetOptions (threads, dialect routing, engine options). Kept
/// for one release; new code should spell core::ServiceOptions.
using PipelineOptions = core::ServiceOptions;

/// Builds a ServiceContext with BOTH built-in dialect engine factories
/// registered (IOS is registered by core itself; JunOS is registered
/// here, the lowest layer that links the JunOS engine). Every batch tool
/// and the daemon construct their context through this.
std::shared_ptr<core::ServiceContext> MakeServiceContext(
    core::ServiceOptions options);

/// Anonymizes corpora against one core::Session with a pool of engine
/// workers. Two construction forms:
///
///   * Session form — CorpusPipeline(context, session): the pipeline is a
///     driver over an externally owned (possibly long-lived) session.
///     EVERY AnonymizeCorpus call preloads its own corpus's addresses
///     (Preload is idempotent per address), so a session fed successive
///     requests produces byte-for-byte what a sequential engine fed the
///     same files in the same order produces — the daemon's streaming
///     contract.
///   * Options form — CorpusPipeline(options): DEPRECATED thin forwarder
///     that builds a private context + session; preserves the historical
///     batch semantics (one preload per session, later AnonymizeCorpus
///     calls reuse the established mappings).
class CorpusPipeline {
 public:
  CorpusPipeline(std::shared_ptr<const core::ServiceContext> context,
                 std::shared_ptr<core::Session> session);

  /// DEPRECATED forwarder; see class comment.
  explicit CorpusPipeline(PipelineOptions options);

  /// Phase 1 + phase 2 (see file comment). Output file i corresponds to
  /// input file i. Worker exceptions are rethrown on the calling thread.
  std::vector<config::ConfigFile> AnonymizeCorpus(
      const std::vector<config::ConfigFile>& files);

  /// Merged view across the preload phase and every worker engine.
  const core::AnonymizationReport& report() const { return report_; }
  const core::LeakRecord& leak_record() const { return leak_record_; }

  /// Fingerprint-defense accounting for the LAST AnonymizeCorpus call
  /// (all zeros / empty when options().defense.k <= 1, which disables
  /// the defend phase). The manifest records every decoy insertion for
  /// confanon_audit --decoys.
  const defense::DefenseReport& defense_report() const {
    return defense_report_;
  }
  const defense::DecoyManifest& decoy_manifest() const {
    return decoy_manifest_;
  }

  /// Observability for the whole pipeline: the registry and trace sink
  /// are shared by all workers (both are thread-safe); provenance is
  /// captured per file and appended to hooks.provenance in corpus order
  /// at join, so the log is deterministic. When hooks.profiler is set,
  /// AnonymizeCorpus brackets its sequential phases (preload, prewarm,
  /// anonymize, join) so the profiler attributes wall time and hardware
  /// counters per phase; when hooks.trace is also set, matching
  /// "phase:<name>" spans land in the trace. Defaults to the context's
  /// hooks; calling this overrides them for this pipeline.
  void install_hooks(const obs::Hooks& hooks) {
    hooks_ = hooks;
    tracer_.set_sink(hooks.trace);
  }

  /// The session this pipeline drives and its shared per-network state
  /// (for mapping export/import and tests).
  const std::shared_ptr<core::Session>& session() const { return session_; }
  const std::shared_ptr<core::NetworkState>& state() const {
    return session_->state();
  }
  ipanon::IpAnonymizer& ip_anonymizer() { return session_->state()->ip; }
  core::StringHasher& string_hasher() { return session_->state()->hasher; }

  /// Section 5 known-entity export over the shared mappings.
  void ExportKnownEntities(std::ostream& out);

 private:
  /// Effective thread count for a corpus of `file_count` files.
  int ResolveThreads(std::size_t file_count) const;
  FileDialect ResolveDialect(const config::ConfigFile& file) const;

  /// Corpus-wide rule I7: collect every file's addresses with the
  /// dialect-appropriate tokenizer and preload the shared trie. In the
  /// session form this runs once per AnonymizeCorpus call (streaming
  /// requests each preload their own file set); in the options form it
  /// runs once per session, like the sequential engine's corpus pass.
  void PreloadCorpus(const std::vector<config::ConfigFile>& files,
                     const std::vector<FileDialect>& dialects);

  /// Pushes shared-trie counter deltas and the trie-size gauge into the
  /// metrics registry (the workers deliberately skip these — syncing
  /// shared counters per worker would double count).
  void SyncSharedMetrics();

  std::shared_ptr<const core::ServiceContext> context_;
  std::shared_ptr<core::Session> session_;
  /// Session form: preload every AnonymizeCorpus call's corpus.
  bool per_call_preload_ = false;
  core::AnonymizationReport report_;
  core::LeakRecord leak_record_;
  defense::DefenseReport defense_report_;
  defense::DecoyManifest decoy_manifest_;
  obs::Hooks hooks_;
  obs::Tracer tracer_;  // pipeline-level phase spans; sink from hooks_
  ipanon::IpAnonymizer::Stats synced_ip_;
};

// --- cross-network parallelism ---
//
// Networks are fully independent: each has its own salt, its own
// Session and its own pipeline, so a multi-network corpus (the
// paper's 31-network dataset) parallelizes across networks as well as
// across the files within one. AnonymizeNetworkSet runs one
// CorpusPipeline per network over a shared thread budget: min(threads,
// networks) network slots run concurrently, and each network's own
// pipeline gets an equal share of the remaining budget. Every network's
// output is deterministic (the per-network guarantee composes — nothing
// is shared between networks), so the set output is byte-identical for
// any thread count.

/// One network's corpus plus its pipeline configuration. A task whose
/// options.threads is 0 receives its share of the set's budget;
/// explicit per-task thread counts are respected.
struct NetworkTask {
  core::ServiceOptions options;
  std::vector<config::ConfigFile> files;
};

/// One network's anonymized corpus and merged accounting, at the same
/// index as its task.
struct NetworkOutput {
  std::vector<config::ConfigFile> files;
  core::AnonymizationReport report;
  core::LeakRecord leak_record;
  /// Fingerprint-defense accounting (zeros when the defense is off).
  core::DefenseSummary defense;
};

/// DEPRECATED: the thread budget and the observability pointers both
/// moved into core::ServiceContext (options().threads and hooks());
/// kept for one release as a forwarder into the context overload.
struct NetworkSetOptions {
  /// Total worker-thread budget shared by all networks. 0 picks
  /// std::thread::hardware_concurrency().
  int threads = 0;
  /// Optional registry shared by every network's pipeline (thread-safe;
  /// counter totals are order-independent).
  obs::MetricsRegistry* metrics = nullptr;
  /// Optional span sink shared by every network's pipeline (must be
  /// thread-safe, like JsonlTraceSink or PhaseProfiler).
  obs::TraceSink* trace = nullptr;
  /// Optional phase profiler; every pipeline brackets its phases on it.
  /// Phase windows are re-entrant, so concurrent networks in the same
  /// phase count overlapping wall time once.
  obs::PhaseProfiler* profiler = nullptr;
};

/// Anonymizes several independent networks concurrently over
/// `set_context`'s thread budget (options().threads) and hooks. Output i
/// corresponds to tasks[i]. The first worker exception is rethrown on
/// the calling thread.
std::vector<NetworkOutput> AnonymizeNetworkSet(
    const std::vector<NetworkTask>& tasks,
    const core::ServiceContext& set_context);

/// DEPRECATED thin forwarder into the ServiceContext overload.
std::vector<NetworkOutput> AnonymizeNetworkSet(
    const std::vector<NetworkTask>& tasks,
    const NetworkSetOptions& set_options = {});

}  // namespace confanon::pipeline
