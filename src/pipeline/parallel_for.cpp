#include "pipeline/parallel_for.h"

#include <algorithm>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace confanon::pipeline {

int ResolveWorkerCount(int requested, std::size_t items) {
  int threads = requested;
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 1;
  }
  threads = static_cast<int>(std::min<std::size_t>(
      static_cast<std::size_t>(threads), std::max<std::size_t>(items, 1)));
  return threads;
}

void RunWorkers(int threads, const std::function<void(int)>& worker) {
  if (threads <= 1) {
    worker(0);
    return;
  }

  std::mutex error_mutex;
  std::exception_ptr first_error;
  const auto guarded = [&](int index) {
    try {
      worker(index);
    } catch (...) {
      std::lock_guard<std::mutex> lock(error_mutex);
      if (!first_error) first_error = std::current_exception();
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back(guarded, t);
  }
  for (std::thread& thread : pool) thread.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace confanon::pipeline
