// Umbrella header for the confanon library.
//
// Pulls in the public API surface a downstream user needs:
//   - core::Anonymizer / core::LeakDetector (Cisco IOS configs)
//   - junos::JunosAnonymizer (JunOS configs)
//   - analysis::ValidateNetwork and the extraction/fingerprint tooling
//   - the substrates (IP map, ASN permutation, regex rewriting) for
//     programs that compose their own pipelines.
//
// Individual headers remain includable on their own; this file exists so
// a quick consumer can write `#include "confanon.h"` and go.
#pragma once

#include "analysis/characteristics.h"
#include "analysis/compartment.h"
#include "analysis/design_extract.h"
#include "analysis/fingerprint.h"
#include "analysis/linkage.h"
#include "analysis/probe_attack.h"
#include "analysis/reachability.h"
#include "analysis/regex_usage.h"
#include "analysis/validate.h"
#include "asn/asn_map.h"
#include "asn/community.h"
#include "asn/regex_rewrite.h"
#include "config/dialect.h"
#include "config/document.h"
#include "config/tokenizer.h"
#include "core/anonymizer.h"
#include "core/leak_detector.h"
#include "core/report.h"
#include "core/session.h"
#include "core/string_hasher.h"
#include "gen/config_writer.h"
#include "gen/network_gen.h"
#include "ipanon/cryptopan.h"
#include "ipanon/ip_anonymizer.h"
#include "junos/anonymizer.h"
#include "junos/design_extract.h"
#include "junos/tokenizer.h"
#include "junos/validate.h"
#include "junos/writer.h"
#include "net/ipv4.h"
#include "net/prefix.h"
#include "net/special.h"
#include "passlist/passlist.h"
#include "regex/regex.h"
#include "util/aho_corasick.h"
#include "util/rng.h"
#include "util/sha1.h"
#include "util/stats.h"
#include "util/strings.h"
