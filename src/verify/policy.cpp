#include "verify/policy.h"

#include "junos/anonymizer.h"

namespace confanon::verify {

namespace {

/// Appends `list`'s entries (from `from` onward) under one origin label,
/// continuing the dialect-wide index sequence.
void AppendEntries(const std::vector<std::string>& tokens, std::size_t from,
                   const char* origin, DialectPolicy& policy) {
  for (std::size_t i = from; i < tokens.size(); ++i) {
    policy.entries.push_back(
        {tokens[i], origin, policy.entries.size()});
  }
}

/// Length of the longest common prefix of `tokens` with the builtin
/// corpus's load order — the part of a custom pass-list that is really
/// just the baseline it was built from.
std::size_t BuiltinPrefixLength(const std::vector<std::string>& tokens) {
  static const std::vector<std::string> builtin =
      passlist::PassList::Builtin().Entries();
  std::size_t n = 0;
  while (n < tokens.size() && n < builtin.size() &&
         tokens[n] == builtin[n]) {
    ++n;
  }
  // A partial overlap that is not the whole baseline means the list was
  // assembled independently; treat everything as custom so each entry is
  // anchored to the operator's list.
  return n == builtin.size() ? n : 0;
}

DialectPolicy IosPolicy(const core::AnonymizerOptions& options) {
  DialectPolicy policy;
  policy.dialect = Dialect::kIos;
  policy.disabled_rules = options.disabled_rules;
  const std::vector<std::string>& tokens = options.pass_list.Entries();
  policy.baseline_count = BuiltinPrefixLength(tokens);
  AppendEntries(tokens, 0, kOriginBuiltin, policy);
  for (std::size_t i = policy.baseline_count; i < policy.entries.size();
       ++i) {
    policy.entries[i].origin = kOriginCustom;
  }
  AppendEntries(options.extra_pass_list.Entries(), 0, kOriginExtra, policy);
  return policy;
}

DialectPolicy JunosPolicy(const core::AnonymizerOptions& options) {
  DialectPolicy policy;
  policy.dialect = Dialect::kJunos;
  // The JunOS engine ignores options.pass_list and disabled_rules; its
  // effective list is always JunosPassList() plus the extras.
  static const std::vector<std::string> baseline =
      junos::JunosPassList().Entries();
  policy.baseline_count = baseline.size();
  AppendEntries(baseline, 0, kOriginJunosBuiltin, policy);
  AppendEntries(options.extra_pass_list.Entries(), 0, kOriginExtra, policy);
  return policy;
}

}  // namespace

const char* DialectName(Dialect dialect) {
  return dialect == Dialect::kIos ? "ios" : "junos";
}

PolicySpec BuiltinPolicy() {
  return PolicyFromOptions(core::AnonymizerOptions{});
}

PolicySpec PolicyFromOptions(const core::AnonymizerOptions& options) {
  PolicySpec spec;
  spec.dialects.push_back(IosPolicy(options));
  spec.dialects.push_back(JunosPolicy(options));
  return spec;
}

}  // namespace confanon::verify
