// The static policy verifier: proves an anonymization policy leak-free
// before a single config line is processed.
//
// Three analyses over a PolicySpec (no input corpus required):
//
//   1. Language intersection (VER-001): every sensitive recognizer's
//      language (recognizer.h) must be disjoint from the pass-list's
//      verbatim language. Both are DFAs, so the proof is product-walk
//      emptiness (regex/intersect.h); a non-empty intersection is
//      reported with a shortest witness string that the tests feed back
//      through the real anonymizer to demonstrate the leak.
//
//   2. Rule reachability/shadowing (VER-002..004): entries unmatchable
//      under the tokenizer's boundary rules (T1 only tests maximal
//      alphabetic runs), entries shadowed by an earlier load of the same
//      token, and custom tokens passed in one dialect but hashed in the
//      other.
//
//   3. Taint closure over symbol spaces (VER-005..007): every one of
//      audit/refgraph.h's nine symbol spaces can carry operator-named
//      identifiers, whose only covering transform is T1/T2; disabling a
//      transform rule leaves its value class uncovered, so each disabled
//      rule is mapped to the class it covers and reported.
//
// Findings reuse audit::Finding and flow through the same SARIF emitter
// as the corpus auditor; `confanon_audit --policy` is the CLI surface,
// and pipeline::MakeServiceContext installs the verdict on the
// ServiceContext so session creation gates on it.
#pragma once

#include "audit/finding.h"
#include "core/session.h"
#include "verify/policy.h"

namespace confanon::verify {

/// Finding codes (also in audit::RuleCatalog() for SARIF):
///   VER-001 error    pass-list entry inside a sensitive language
///   VER-002 warning  entry unreachable under tokenizer boundary rules
///   VER-003 warning  entry shadowed by an earlier load of the token
///   VER-004 warning  token passed in one dialect, hashed in the other
///   VER-005 error    symbol space uncovered (T1/T2 disabled)
///   VER-006 varies   value class uncovered (transform rule disabled)
///   VER-007 warning  unknown rule name in disabled_rules

/// Runs all three analyses. Findings are ordered dialect-major in the
/// order the analyses run; result.stats carries the verify.* counters
/// ("verify.entries", "verify.distinct_tokens", "verify.findings",
/// "verify.dfa_states", "verify.verify_ns").
audit::AuditResult VerifyPolicy(const PolicySpec& spec);

/// Convenience: PolicyFromOptions + VerifyPolicy.
audit::AuditResult VerifyEngineOptions(const core::AnonymizerOptions& options);

/// Folds a verification result into the verdict ServiceContext gates
/// session creation on. first_finding is the most severe finding's
/// rendered text.
core::PolicyVerdict VerdictOf(const audit::AuditResult& result);

}  // namespace confanon::verify
