#include "verify/verify.h"

#include <chrono>
#include <string_view>
#include <unordered_map>
#include <unordered_set>

#include "audit/refgraph.h"
#include "net/ipv4.h"
#include "net/special.h"
#include "regex/intersect.h"
#include "util/strings.h"
#include "verify/recognizer.h"

namespace confanon::verify {

namespace {

using audit::Anchor;
using audit::Finding;
using audit::Severity;

Anchor EntryAnchor(const PolicyEntry& entry) {
  return Anchor{entry.origin, entry.index};
}

std::string Where(Dialect dialect) {
  return std::string("[") + DialectName(dialect) + "] ";
}

bool IsSpecialAddressToken(std::string_view token) {
  const auto address = net::Ipv4Address::Parse(token);
  return address && net::IsSpecial(*address);
}

bool HasNonAlpha(std::string_view token) {
  for (const char c : token) {
    if (!util::IsAsciiAlpha(c)) return true;
  }
  return false;
}

/// First-occurrence index of every distinct token, in load order.
std::unordered_map<std::string_view, std::size_t> FirstOccurrences(
    const DialectPolicy& policy) {
  std::unordered_map<std::string_view, std::size_t> first;
  first.reserve(policy.entries.size());
  for (std::size_t i = 0; i < policy.entries.size(); ++i) {
    first.try_emplace(policy.entries[i].text, i);
  }
  return first;
}

/// Analysis 1 — language intersection. Proves each recognizer language
/// disjoint from the pass-list's verbatim language; on failure, every
/// offending entry gets a VER-001 error carrying the intersection's
/// shortest witness. Tokens flagged here are recorded in `leaky` so the
/// reachability pass does not double-report them as dead entries.
void AnalyzeIntersections(const DialectPolicy& policy,
                          audit::AuditResult& result,
                          std::unordered_set<std::string_view>& leaky,
                          std::uint64_t& dfa_states) {
  const auto first = FirstOccurrences(policy);
  // Two verbatim-language DFAs: all distinct tokens, and the subset that
  // does not parse as a special address (for recognizers exempting rule
  // I2's passthrough). Built once per dialect — the literal DFA is the
  // expensive automaton, the recognizers are tiny.
  std::vector<std::string> all_tokens;
  std::vector<std::string> non_special_tokens;
  all_tokens.reserve(first.size());
  non_special_tokens.reserve(first.size());
  bool any_special = false;
  for (const auto& [token, index] : first) {
    (void)index;
    all_tokens.emplace_back(token);
    if (IsSpecialAddressToken(token)) {
      any_special = true;  // rule I2 passes special addresses legitimately
    } else {
      non_special_tokens.emplace_back(token);
    }
  }
  const regex::Dfa all_dfa = regex::LiteralSetDfa(all_tokens);
  const regex::Dfa non_special_dfa =
      any_special ? regex::LiteralSetDfa(non_special_tokens)
                  : regex::Dfa(all_dfa);
  dfa_states += static_cast<std::uint64_t>(all_dfa.StateCount());
  if (any_special) {
    dfa_states += static_cast<std::uint64_t>(non_special_dfa.StateCount());
  }
  for (const Recognizer& recognizer : SensitiveRecognizers()) {
    const regex::Dfa& literal_dfa =
        recognizer.exempt_special_addresses ? non_special_dfa : all_dfa;
    dfa_states += static_cast<std::uint64_t>(recognizer.dfa.StateCount());
    const auto witness =
        regex::ShortestIntersectionWitness(recognizer.dfa, literal_dfa);
    if (!witness) continue;  // disjoint: this class is provably safe
    for (const auto& [token, index] : first) {
      if (recognizer.exempt_special_addresses &&
          IsSpecialAddressToken(token)) {
        continue;
      }
      if (!recognizer.dfa.FullMatch(token)) continue;
      leaky.insert(token);
      Finding finding;
      finding.rule_id = "VER-001";
      finding.severity = Severity::kError;
      finding.anchor = EntryAnchor(policy.entries[index]);
      finding.message =
          Where(policy.dialect) + "pass-list entry '" + std::string(token) +
          "' lies inside the " + recognizer.name +
          " language (normally transformed by " + recognizer.rule_hint +
          "); shortest witness of the intersection: '" + *witness +
          "'. The entry survives anonymization verbatim wherever it "
          "appears as a whole identifier.";
      result.findings.push_back(std::move(finding));
    }
  }
}

/// Analysis 2 — reachability and shadowing (VER-002..004).
void AnalyzeReachability(const PolicySpec& spec,
                         const DialectPolicy& policy,
                         const std::unordered_set<std::string_view>& leaky,
                         audit::AuditResult& result) {
  // VER-003: later loads of an already-present token are inert — the
  // pass-list is a set, so the second Add can only mislead whoever
  // maintains the list.
  std::unordered_map<std::string_view, std::size_t> seen;
  seen.reserve(policy.entries.size());
  for (std::size_t i = 0; i < policy.entries.size(); ++i) {
    const PolicyEntry& entry = policy.entries[i];
    const auto [it, inserted] = seen.try_emplace(entry.text, i);
    if (inserted) continue;
    const PolicyEntry& original = policy.entries[it->second];
    Finding finding;
    finding.rule_id = "VER-003";
    finding.severity = Severity::kWarning;
    finding.anchor = EntryAnchor(entry);
    finding.related = EntryAnchor(original);
    finding.message = Where(policy.dialect) + "entry '" + entry.text +
                      "' shadows an identical earlier entry (" +
                      original.origin + ":" +
                      std::to_string(original.index + 1) +
                      "); the later load is inert.";
    result.findings.push_back(std::move(finding));
  }

  // VER-002: the word tokenizer only ever tests maximal alphabetic runs
  // against the pass-list (paper rule T1), so an entry with any
  // non-alphabetic byte can never match a segment — it is only
  // reachable through whole-identifier lookups (file names, forced name
  // arguments, JunOS whole tokens).
  for (const auto& [token, index] : FirstOccurrences(policy)) {
    if (leaky.contains(token)) continue;  // already a VER-001 error
    if (!HasNonAlpha(token)) continue;
    Finding finding;
    finding.rule_id = "VER-002";
    finding.severity = Severity::kWarning;
    finding.anchor = EntryAnchor(policy.entries[index]);
    finding.message =
        Where(policy.dialect) + "entry '" + std::string(token) +
        "' contains non-alphabetic characters: T1 segmentation only "
        "tests alphabetic runs, so the entry is dead for word "
        "anonymization and reachable only via whole-identifier "
        "exemptions.";
    result.findings.push_back(std::move(finding));
  }

  // VER-004: a custom token pass-listed here but hashed by the other
  // dialect's engine — the same word survives in one corpus and turns
  // into a hash token in the other, breaking cross-dialect referential
  // integrity for mixed corpora.
  for (const DialectPolicy& other : spec.dialects) {
    if (other.dialect == policy.dialect) continue;
    std::unordered_set<std::string_view> other_tokens;
    other_tokens.reserve(other.entries.size());
    for (const PolicyEntry& entry : other.entries) {
      other_tokens.insert(entry.text);
    }
    std::unordered_set<std::string_view> reported;
    for (std::size_t i = policy.baseline_count; i < policy.entries.size();
         ++i) {
      const PolicyEntry& entry = policy.entries[i];
      if (other_tokens.contains(entry.text)) continue;
      if (!reported.insert(entry.text).second) continue;
      Finding finding;
      finding.rule_id = "VER-004";
      finding.severity = Severity::kWarning;
      finding.anchor = EntryAnchor(entry);
      finding.message =
          "custom entry '" + entry.text + "' is pass-listed in " +
          DialectName(policy.dialect) + " but hashed in " +
          DialectName(other.dialect) +
          " — a mixed corpus maps the same word two ways. (The JunOS "
          "engine honors only extra_pass_list, not a replaced IOS "
          "pass_list.)";
      result.findings.push_back(std::move(finding));
    }
  }
}

/// One transform rule's coverage obligation for the taint analysis.
struct RuleCoverage {
  const char* rule;
  Severity severity;
  const char* value_class;
};

/// Every disableable rule other than T1/T2 (which are handled by the
/// symbol-space closure) mapped to the value class it covers.
constexpr RuleCoverage kRuleCoverage[] = {
    {core::rules::kStripBangComments, Severity::kWarning,
     "operator free text in '!' comments"},
    {core::rules::kStripFreeText, Severity::kWarning,
     "free text (descriptions, remarks)"},
    {core::rules::kStripBanners, Severity::kWarning,
     "login/motd banner text"},
    {core::rules::kDialerStrings, Severity::kError,
     "dialer strings (phone numbers)"},
    {core::rules::kSnmpStrings, Severity::kError,
     "SNMP community strings"},
    {core::rules::kSecrets, Severity::kError,
     "passwords and secrets"},
    {core::rules::kNameArguments, Severity::kError,
     "named-entity arguments (hostnames, map names)"},
    {core::rules::kRouterBgp, Severity::kError, "router bgp ASN"},
    {core::rules::kNeighborRemoteAs, Severity::kError,
     "neighbor remote-as ASN"},
    {core::rules::kNeighborLocalAs, Severity::kError,
     "neighbor local-as ASN"},
    {core::rules::kConfedIdentifier, Severity::kError,
     "confederation identifier ASN"},
    {core::rules::kConfedPeers, Severity::kError,
     "confederation peer ASNs"},
    {core::rules::kAsPathRegex, Severity::kError,
     "as-path regexp language"},
    {core::rules::kAsPathPrepend, Severity::kError,
     "as-path prepend ASNs"},
    {core::rules::kCommunityListLiteral, Severity::kError,
     "community-list literals"},
    {core::rules::kCommunityListRegex, Severity::kError,
     "community-list regexp language"},
    {core::rules::kSetCommunity, Severity::kError,
     "set community values"},
    {core::rules::kSetExtcommunity, Severity::kError,
     "set extcommunity values"},
    {core::rules::kAsnAudit, Severity::kNote,
     "residual-ASN audit (detection only)"},
    {core::rules::kMapAddresses, Severity::kError,
     "IPv4 address literals"},
    {core::rules::kSpecialPassthrough, Severity::kNote,
     "special-address passthrough (masks stay verbatim; disabling only "
     "maps more)"},
    {core::rules::kMapPrefixes, Severity::kError, "CIDR prefixes"},
    {core::rules::kAddressMaskPairs, Severity::kError,
     "address/mask pairs"},
    {core::rules::kAddressWildcardPairs, Severity::kError,
     "address/wildcard pairs"},
    {core::rules::kPlainAddressArgs, Severity::kError,
     "plain address arguments"},
    {core::rules::kSubnetPreload, Severity::kNote,
     "subnet-address preload (consistency, not secrecy)"},
};

/// Analysis 3 — taint closure over symbol spaces (VER-005..007). Only
/// the IOS policy carries a disable surface; the JunOS engine has none.
void AnalyzeTaint(const DialectPolicy& policy, audit::AuditResult& result) {
  if (policy.disabled_rules.empty()) return;

  std::unordered_set<std::string_view> known;
  known.insert(core::rules::kSegmentWords);
  known.insert(core::rules::kPasslistHash);
  for (const RuleCoverage& coverage : kRuleCoverage) {
    known.insert(coverage.rule);
  }

  const Anchor rules_anchor{"<rules>", Anchor::kNoLine};

  for (const std::string& name : policy.disabled_rules) {
    if (known.contains(name)) continue;
    Finding finding;
    finding.rule_id = "VER-007";
    finding.severity = Severity::kWarning;
    finding.anchor = rules_anchor;
    finding.message = Where(policy.dialect) + "disabled_rules names '" +
                      name +
                      "', which is not a known rule — likely a typo, and "
                      "the intended rule stays enabled.";
    result.findings.push_back(std::move(finding));
  }

  // T1/T2 are the only transforms covering operator-chosen names, and
  // refgraph's nine symbol spaces are exactly where such names live.
  // With either disabled, every space is a taint source with no sink.
  const bool words_covered =
      !policy.disabled_rules.contains(core::rules::kSegmentWords) &&
      !policy.disabled_rules.contains(core::rules::kPasslistHash);
  if (!words_covered) {
    constexpr audit::SymbolSpace kSpaces[] = {
        audit::SymbolSpace::kAcl,           audit::SymbolSpace::kRouteMap,
        audit::SymbolSpace::kPrefixList,    audit::SymbolSpace::kCommunityList,
        audit::SymbolSpace::kAsPathList,    audit::SymbolSpace::kPeerGroup,
        audit::SymbolSpace::kInterface,     audit::SymbolSpace::kKeyChain,
        audit::SymbolSpace::kNatPool,
    };
    for (const audit::SymbolSpace space : kSpaces) {
      Finding finding;
      finding.rule_id = "VER-005";
      finding.severity = Severity::kError;
      finding.anchor = rules_anchor;
      finding.message =
          Where(policy.dialect) + "symbol space '" +
          audit::SymbolSpaceName(space) +
          "' carries operator-named identifiers but its only covering "
          "transform (T1/T2 word hashing) is disabled: def/use edges "
          "smuggle raw names into the output.";
      result.findings.push_back(std::move(finding));
    }
  }

  for (const RuleCoverage& coverage : kRuleCoverage) {
    if (!policy.disabled_rules.contains(coverage.rule)) continue;
    Finding finding;
    finding.rule_id = "VER-006";
    finding.severity = coverage.severity;
    finding.anchor = rules_anchor;
    finding.message = Where(policy.dialect) + "rule " + coverage.rule +
                      " is disabled, leaving its value class uncovered: " +
                      coverage.value_class + ".";
    result.findings.push_back(std::move(finding));
  }
}

}  // namespace

audit::AuditResult VerifyPolicy(const PolicySpec& spec) {
  const auto start = std::chrono::steady_clock::now();
  audit::AuditResult result;
  std::uint64_t entries = 0;
  std::uint64_t distinct = 0;
  std::uint64_t dfa_states = 0;
  for (const DialectPolicy& policy : spec.dialects) {
    entries += policy.entries.size();
    distinct += FirstOccurrences(policy).size();
    std::unordered_set<std::string_view> leaky;
    AnalyzeIntersections(policy, result, leaky, dfa_states);
    AnalyzeReachability(spec, policy, leaky, result);
    AnalyzeTaint(policy, result);
  }
  result.stats["verify.entries"] = entries;
  result.stats["verify.distinct_tokens"] = distinct;
  result.stats["verify.findings"] = result.findings.size();
  result.stats["verify.dfa_states"] = dfa_states;
  result.stats["verify.verify_ns"] = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  return result;
}

audit::AuditResult VerifyEngineOptions(
    const core::AnonymizerOptions& options) {
  return VerifyPolicy(PolicyFromOptions(options));
}

core::PolicyVerdict VerdictOf(const audit::AuditResult& result) {
  core::PolicyVerdict verdict;
  verdict.verified = true;
  const Finding* first = nullptr;
  for (const Finding& finding : result.findings) {
    switch (finding.severity) {
      case Severity::kError:
        ++verdict.errors;
        break;
      case Severity::kWarning:
        ++verdict.warnings;
        break;
      case Severity::kNote:
        ++verdict.notes;
        break;
    }
    if (first == nullptr || finding.severity < first->severity) {
      first = &finding;
    }
  }
  if (first != nullptr) {
    verdict.first_finding = first->ToString();
  }
  return verdict;
}

}  // namespace confanon::verify
