// The sensitive-value recognizers the language-intersection analysis
// proves the pass-list disjoint from.
//
// Each recognizer is a DFA accepting exactly one class of values the
// anonymizer is obligated to transform: dotted-quad IPv4 literals
// (rules I1..I6), public ASN literals (A1..A11; public means 1..64511,
// asn/asn_map.h), community literals ASN:VALUE (A8/A10), and the
// engine's own hash tokens "h" + 10 lowercase hex digits
// (core::StringHasher) — a pass-list entry matching that shape would
// let an adversary smuggle a forged mapping through verbatim.
//
// A pass-list entry inside a recognizer's language is a provable leak
// channel: PassList::Contains is consulted not only for alphabetic
// T1/T2 segments but for whole identifiers (file names, force-hashed
// name arguments, JunOS tokens), so the entry survives anonymization
// verbatim wherever it appears as such an identifier.
#pragma once

#include <string>
#include <vector>

#include "regex/dfa.h"

namespace confanon::verify {

struct Recognizer {
  /// Stable name used in finding messages ("ipv4-literal", ...).
  std::string name;
  /// The anonymizer rule family that normally transforms this class.
  std::string rule_hint;
  /// Full-match DFA over the class's literal syntax.
  regex::Dfa dfa;
  /// IPv4 recognizer only: special addresses (netmasks, wildcards,
  /// loopback — net::IsSpecial) pass through legitimately under rule I2,
  /// so entries that parse as special are exempt from VER-001.
  bool exempt_special_addresses = false;
};

/// The process-wide recognizer set, compiled once. Both dialects check
/// against all of them — the value classes are dialect-independent.
const std::vector<Recognizer>& SensitiveRecognizers();

}  // namespace confanon::verify
