#include "verify/recognizer.h"

#include <string_view>

#include "regex/intersect.h"

namespace confanon::verify {

namespace {

/// 0..255 with no leading zeros (the anonymizer's address parser is
/// strict-decimal, and configs write octets canonically).
constexpr std::string_view kOctet =
    "(25[0-5]|2[0-4][0-9]|1[0-9][0-9]|[1-9][0-9]|[0-9])";

/// Public ASNs: 1..64511 (asn::IsPublicAsn). Private 64512..65535 need
/// no anonymization, so the recognizer excludes them.
constexpr std::string_view kPublicAsn =
    "([1-9][0-9]{0,3}|[1-5][0-9]{4}|6[0-3][0-9]{3}|64[0-4][0-9]{2}"
    "|6450[0-9]|6451[01])";

/// Any 16-bit value 0..65535 (community value half).
constexpr std::string_view kUint16 =
    "(6553[0-5]|655[0-2][0-9]|65[0-4][0-9]{2}|6[0-4][0-9]{3}"
    "|[1-5][0-9]{4}|[1-9][0-9]{0,3}|0)";

std::string Concat(std::string_view a, std::string_view b,
                   std::string_view c = {}, std::string_view d = {},
                   std::string_view e = {}, std::string_view f = {},
                   std::string_view g = {}) {
  std::string out;
  for (const std::string_view part : {a, b, c, d, e, f, g}) out += part;
  return out;
}

std::vector<Recognizer> BuildRecognizers() {
  std::vector<Recognizer> recognizers;
  recognizers.push_back(
      {"ipv4-literal", "I1.map-addresses",
       regex::CompileFullMatchDfa(Concat(kOctet, "\\.", kOctet, "\\.",
                                         kOctet, "\\.", kOctet)),
       /*exempt_special_addresses=*/true});
  recognizers.push_back({"asn-public-literal", "A1..A11 (ASN permutation)",
                         regex::CompileFullMatchDfa(std::string(kPublicAsn)),
                         false});
  recognizers.push_back(
      {"community-literal", "A8.community-list-literal",
       regex::CompileFullMatchDfa(Concat(kPublicAsn, ":", kUint16)), false});
  recognizers.push_back(
      {"hash-token", "core::StringHasher output space",
       regex::CompileFullMatchDfa("h[0-9a-f]{10}"), false});
  return recognizers;
}

}  // namespace

const std::vector<Recognizer>& SensitiveRecognizers() {
  static const std::vector<Recognizer> recognizers = BuildRecognizers();
  return recognizers;
}

}  // namespace confanon::verify
