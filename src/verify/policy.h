// The policy model the static verifier analyzes.
//
// A "policy" is everything that decides what survives anonymization
// verbatim before any config line is read: the per-dialect pass-list
// (baseline corpus + custom additions, in load order), and the set of
// rewrite rules left enabled. The verifier (verify.h) runs over this
// model with no input corpus — the point is to reject a contradictory
// rule set at load time, before a session exists.
//
// Per-dialect asymmetries are modeled faithfully rather than papered
// over: the IOS engine honors AnonymizerOptions::pass_list (replacing
// the builtin corpus) and disabled_rules, while the JunOS engine ignores
// both and only honors extra_pass_list on top of JunosPassList(). A
// custom token that lands in one dialect's effective set but not the
// other's is exactly the cross-dialect conflict VER-004 reports.
#pragma once

#include <cstddef>
#include <set>
#include <string>
#include <vector>

#include "core/anonymizer.h"
#include "passlist/passlist.h"

namespace confanon::verify {

/// Which engine's effective policy a DialectPolicy describes.
enum class Dialect {
  kIos,
  kJunos,
};

const char* DialectName(Dialect dialect);

/// One pass-list entry in load order, with the provenance the findings
/// anchor to: `origin` becomes the anchor's file label and `index` its
/// (zero-based) line.
struct PolicyEntry {
  std::string text;    // lowercased, as PassList stores it
  std::string origin;  // "<builtin>", "<junos-builtin>", "<extra>", ...
  std::size_t index;   // load position within the whole dialect list
};

/// The effective policy of one dialect engine.
struct DialectPolicy {
  Dialect dialect = Dialect::kIos;
  /// Every entry in load order (baseline first, then custom additions),
  /// duplicates preserved — shadowing analysis needs them.
  std::vector<PolicyEntry> entries;
  /// entries[0..baseline_count) came from the dialect's builtin corpus;
  /// the rest are operator-supplied (custom pass-list tail or extras).
  std::size_t baseline_count = 0;
  /// Rule names the engine will skip (empty for JunOS, which has no
  /// disable surface).
  std::set<std::string> disabled_rules;
};

/// The full cross-dialect policy under verification.
struct PolicySpec {
  std::vector<DialectPolicy> dialects;
};

/// Origin labels used for anchors.
inline constexpr char kOriginBuiltin[] = "<builtin>";
inline constexpr char kOriginJunosBuiltin[] = "<junos-builtin>";
inline constexpr char kOriginCustom[] = "<custom>";
inline constexpr char kOriginExtra[] = "<extra>";

/// The shipped policy: builtin corpora at both dialects, no custom
/// entries, nothing disabled. `confanon_audit --policy` proves this
/// clean, and a test pins it that way.
PolicySpec BuiltinPolicy();

/// Models the policy `options` produces across both dialect engines.
/// The IOS baseline is the longest common prefix of options.pass_list's
/// load order with the builtin corpus (a wholly custom list has an empty
/// baseline); extras are appended to both dialects, matching how
/// core::Anonymizer and junos::JunosAnonymizer consume the options.
PolicySpec PolicyFromOptions(const core::AnonymizerOptions& options);

}  // namespace confanon::verify
