// Leak audit demo (paper Section 6.1).
//
// Deliberately cripples the anonymizer (several context rules disabled),
// anonymizes a network, and shows the grep-back highlighter catching the
// survivors — the workflow the paper used to converge on its 28 rules.
#include <iostream>
#include <set>

#include "core/anonymizer.h"
#include "core/leak_detector.h"
#include "gen/config_writer.h"
#include "gen/network_gen.h"

int main() {
  using namespace confanon;

  gen::GeneratorParams params;
  params.seed = 99;
  params.router_count = 14;
  params.p_community_regex = 1.0;
  const auto network = gen::GenerateNetwork(params, 0);
  const auto pre = gen::WriteNetworkConfigs(network);

  struct Scenario {
    const char* label;
    std::set<std::string> disabled;
  };
  const Scenario scenarios[] = {
      {"full rule set", {}},
      {"A1 router-bgp disabled", {core::rules::kRouterBgp}},
      {"A6 as-path-regex disabled", {core::rules::kAsPathRegex}},
      {"A1+A6+A10 disabled",
       {core::rules::kRouterBgp, core::rules::kAsPathRegex,
        core::rules::kSetCommunity}},
  };

  for (const Scenario& scenario : scenarios) {
    core::AnonymizerOptions options;
    options.salt = "audit-salt";
    options.disabled_rules = scenario.disabled;
    core::Anonymizer anonymizer(std::move(options));
    const auto post = anonymizer.AnonymizeNetwork(pre);
    const auto findings =
        core::LeakDetector::Scan(post, anonymizer.leak_record());
    std::cout << scenario.label << ": " << findings.size()
              << " highlighted lines\n";
    std::size_t shown = 0;
    for (const auto& finding : findings) {
      if (++shown > 3) break;
      std::cout << "    [" << finding.matched << "] " << finding.line << "\n";
    }
  }
  std::cout << "\nThe operator maps each highlight to a missing rule and "
               "re-runs — the paper's\niteration 'closes quickly, requiring "
               "fewer than 5 iterations' (see bench_iteration).\n";
  return 0;
}
