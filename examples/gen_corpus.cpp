// Writes a generator-produced corpus to a directory, for driving the
// anonymizer and the map-free auditor from the command line (this is what
// the CI audit gate uses: gen_corpus -> confanon_tool -> confanon_audit).
//
// Usage:
//   gen_corpus OUTDIR [--routers N] [--seed S] [--ios|--junos|--mixed]
//
// One network is generated deterministically from the seed; each router's
// config lands in OUTDIR as <hostname>.cfg. --mixed alternates dialects
// per router (even index IOS, odd JunOS) to exercise auto-detection.
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <string>

#include "config/document.h"
#include "gen/config_writer.h"
#include "gen/network_gen.h"
#include "junos/writer.h"
#include "util/io.h"

namespace {

enum class Mode { kIos, kJunos, kMixed };

void Usage() {
  std::cerr << "usage: gen_corpus OUTDIR [--routers N] [--seed S] "
               "[--ios|--junos|--mixed]\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_dir;
  int routers = 12;
  std::uint64_t seed = 1;
  Mode mode = Mode::kIos;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        Usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--routers") {
      routers = std::atoi(next());
    } else if (arg == "--seed") {
      seed = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (arg == "--ios") {
      mode = Mode::kIos;
    } else if (arg == "--junos") {
      mode = Mode::kJunos;
    } else if (arg == "--mixed") {
      mode = Mode::kMixed;
    } else if (!arg.empty() && arg[0] == '-') {
      Usage();
      return 2;
    } else if (out_dir.empty()) {
      out_dir = arg;
    } else {
      Usage();
      return 2;
    }
  }
  if (out_dir.empty() || routers <= 0) {
    Usage();
    return 2;
  }

  confanon::gen::GeneratorParams params;
  params.seed = seed;
  params.router_count = routers;
  const confanon::gen::NetworkSpec network =
      confanon::gen::GenerateNetwork(params, 0);

  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  if (ec) {
    std::cerr << "gen_corpus: cannot create " << out_dir << ": "
              << ec.message() << "\n";
    return 1;
  }

  std::size_t written = 0;
  confanon::util::BufferedWriter out;  // one buffer reused across configs
  for (std::size_t i = 0; i < network.routers.size(); ++i) {
    const bool junos =
        mode == Mode::kJunos || (mode == Mode::kMixed && i % 2 == 1);
    const confanon::config::ConfigFile file =
        junos ? confanon::junos::WriteJunosConfig(network.routers[i], network)
              : confanon::gen::WriteConfig(network.routers[i], network);
    const auto path =
        std::filesystem::path(out_dir) / (file.name() + ".cfg");
    std::string error;
    if (!out.Open(path.string(), &error)) {
      std::cerr << "gen_corpus: " << error << "\n";
      return 1;
    }
    file.AppendTo(out);
    if (!out.Close()) {
      std::cerr << "gen_corpus: " << out.error() << "\n";
      return 1;
    }
    ++written;
  }
  std::cout << "gen_corpus: wrote " << written << " configs to " << out_dir
            << "\n";
  return 0;
}
