// Fingerprint attack demo (paper Section 6.2/6.3).
//
// Plays the attacker: given one network's *anonymized* configs and
// externally-measured fingerprints of a candidate population (which equal
// the pre-anonymization fingerprints, since anonymization preserves the
// subnet-size and peering structure), try to identify which candidate the
// anonymized configs belong to.
//
// Usage: fingerprint_attack [population] [target_index]
#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "analysis/fingerprint.h"
#include "core/anonymizer.h"
#include "gen/config_writer.h"
#include "gen/network_gen.h"

int main(int argc, char** argv) {
  using namespace confanon;

  const int population = argc > 1 ? std::atoi(argv[1]) : 40;
  const int target = argc > 2 ? std::atoi(argv[2]) : 7;

  // The candidate networks, with their externally measured fingerprints.
  std::vector<util::Histogram> subnet_fps;
  std::vector<analysis::PeeringFingerprint> peering_fps;
  std::vector<std::string> names;
  std::vector<config::ConfigFile> target_anonymized;

  for (int i = 0; i < population; ++i) {
    gen::GeneratorParams params;
    params.seed = 20040425 + static_cast<std::uint64_t>(i);
    params.router_count = 8 + (i % 9) * 3;
    const auto network = gen::GenerateNetwork(params, i);
    const auto pre = gen::WriteNetworkConfigs(network);
    names.push_back(network.name);
    subnet_fps.push_back(analysis::SubnetSizeFingerprint(pre));
    peering_fps.push_back(analysis::PeeringStructureFingerprint(pre));
    if (i == target) {
      core::AnonymizerOptions options;
      options.salt = "attack-demo";
      core::Anonymizer anonymizer(std::move(options));
      target_anonymized = anonymizer.AnonymizeNetwork(pre);
    }
  }

  std::cout << "population: " << population << " networks; the attacker holds "
            << "anonymized configs of one of them\n\n";

  // Fingerprint the anonymized corpus.
  const util::Histogram anon_subnet =
      analysis::SubnetSizeFingerprint(target_anonymized);
  const analysis::PeeringFingerprint anon_peering =
      analysis::PeeringStructureFingerprint(target_anonymized);

  auto hunt = [&](auto&& matches, const char* what) {
    std::vector<int> candidates;
    for (int i = 0; i < population; ++i) {
      if (matches(i)) candidates.push_back(i);
    }
    std::cout << what << ": " << candidates.size() << " candidate(s)";
    if (candidates.size() == 1) {
      std::cout << " -> network DEANONYMIZED as '"
                << names[static_cast<std::size_t>(candidates[0])] << "'"
                << (candidates[0] == target ? " (correct)" : " (WRONG)");
    } else if (!candidates.empty()) {
      std::cout << " -> ambiguous, attack fails";
    }
    std::cout << "\n";
    return candidates;
  };

  hunt([&](int i) { return subnet_fps[static_cast<std::size_t>(i)] ==
                           anon_subnet; },
       "subnet-size histogram match");
  hunt([&](int i) { return peering_fps[static_cast<std::size_t>(i)] ==
                           anon_peering; },
       "peering structure match");

  // Near-match (L1 distance) ranking for the subnet fingerprint, the way
  // a real attacker with noisy external measurements would proceed.
  std::cout << "\nnearest candidates by subnet-histogram L1 distance:\n";
  std::vector<std::pair<std::uint64_t, int>> ranked;
  for (int i = 0; i < population; ++i) {
    ranked.emplace_back(util::Histogram::L1Distance(
                            subnet_fps[static_cast<std::size_t>(i)],
                            anon_subnet),
                        i);
  }
  std::sort(ranked.begin(), ranked.end());
  for (std::size_t i = 0; i < 5 && i < ranked.size(); ++i) {
    std::cout << "  distance " << ranked[i].first << ": "
              << names[static_cast<std::size_t>(ranked[i].second)]
              << (ranked[i].second == target ? "   <-- the true target" : "")
              << "\n";
  }
  return 0;
}
