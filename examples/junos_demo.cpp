// JunOS portability demo (paper Section 1, footnote 2: "the techniques
// are directly applicable to JunOS").
//
// Renders the same small network in Cisco IOS and JunOS syntax,
// anonymizes both with the same salt (and a shared IP mapping), and
// prints one router side by side so the structural correspondence is
// visible: same permuted ASNs, same hash tokens for shared identifiers,
// same mapped addresses.
#include <iostream>
#include <sstream>

#include "core/anonymizer.h"
#include "gen/config_writer.h"
#include "gen/network_gen.h"
#include "junos/anonymizer.h"
#include "junos/writer.h"

int main() {
  using namespace confanon;

  gen::GeneratorParams params;
  params.seed = 20040426;
  params.router_count = 6;
  params.p_alternation_regex = 1.0;
  const gen::NetworkSpec network = gen::GenerateNetwork(params, 0);

  const auto ios = gen::WriteNetworkConfigs(network);
  const auto junos_files = junos::WriteJunosNetworkConfigs(network);

  core::AnonymizerOptions ios_options;
  ios_options.salt = "portability-demo";
  core::Anonymizer ios_anonymizer(std::move(ios_options));
  const auto ios_post = ios_anonymizer.AnonymizeNetwork(ios);

  junos::JunosAnonymizerOptions junos_options;
  junos_options.salt = "portability-demo";
  junos::JunosAnonymizer junos_anonymizer(std::move(junos_options));
  std::stringstream mapping;
  ios_anonymizer.ip_anonymizer().ExportMappings(mapping);
  junos_anonymizer.ip_anonymizer().ImportMappings(mapping);
  const auto junos_post = junos_anonymizer.AnonymizeNetwork(junos_files);

  // Pick the first BGP border router for display.
  std::size_t border = 0;
  for (std::size_t i = 0; i < network.routers.size(); ++i) {
    if (network.routers[i].bgp.has_value()) {
      bool external = false;
      for (const auto& neighbor : network.routers[i].bgp->neighbors) {
        external |= neighbor.external;
      }
      if (external) {
        border = i;
        break;
      }
    }
  }

  std::cout << "===== anonymized IOS (" << ios_post[border].name()
            << ") =====\n";
  std::size_t shown = 0;
  for (const auto& line : ios_post[border].lines()) {
    if (++shown > 45) break;
    std::cout << line << "\n";
  }
  std::cout << "\n===== anonymized JunOS (same router, same salt) =====\n";
  shown = 0;
  for (const auto& line : junos_post[border].lines()) {
    if (++shown > 60) break;
    std::cout << line << "\n";
  }

  std::cout << "\n===== cross-language consistency =====\n";
  std::cout << "AS " << network.asn << " -> "
            << ios_anonymizer.asn_map().Map(network.asn) << " (IOS) / "
            << junos_anonymizer.asn_map().Map(network.asn) << " (JunOS)\n";
  const auto& loopback = network.routers[border].interfaces.front().address;
  std::cout << loopback.ToString() << " -> "
            << ios_anonymizer.ip_anonymizer().Map(loopback).ToString()
            << " (IOS) / "
            << junos_anonymizer.ip_anonymizer().Map(loopback).ToString()
            << " (JunOS)\n";
  return 0;
}
