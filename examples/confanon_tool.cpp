// confanon_tool — the command-line anonymizer a network operator would
// run (the artifact the paper's clearinghouse workflow distributes:
// "Network owners could download the configuration anonymization tools
// from the portal ... and upload their anonymized configurations").
//
// Usage:
//   confanon_tool --salt SECRET [options] config1 [config2 ...]
//
// Options:
//   --salt SECRET        owner-chosen secret (required)
//   --out DIR            write anonymized files to DIR (default: stdout)
//   --minimized-regexps  emit minimized-DFA regexps instead of alternations
//   --keep-comments      do not strip comments (NOT recommended)
//   --export-map FILE    save the IP mapping for a later consistent run
//   --import-map FILE    preload the IP mapping from an earlier run
//   --report             print the anonymization report to stderr
//   --check-leaks        run the Section 6.1 grep-back and report findings
//   --junos              treat inputs as JunOS configs (hierarchical
//                        brace syntax) instead of Cisco IOS
//   --entities FILE      known-entity declarations (paper Section 5), one
//                        per line: "label | asn asn ... | prefix prefix ..."
//   --entities-out FILE  write the anonymized entity groupings
//
// All files given in one invocation are treated as one network: they share
// the hash memo, IP trie and ASN permutation, so cross-file references
// stay consistent.
#include <filesystem>
#include <fstream>
#include <optional>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/anonymizer.h"
#include "core/leak_detector.h"
#include "junos/anonymizer.h"
#include "util/strings.h"

namespace {

void Usage() {
  std::cerr << "usage: confanon_tool --salt SECRET [--out DIR] "
               "[--minimized-regexps] [--keep-comments]\n"
               "                     [--export-map FILE] [--import-map FILE] "
               "[--report] [--check-leaks] [--junos]\n"
               "                     config1 [config2 ...]\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace confanon;

  core::AnonymizerOptions options;
  options.salt.clear();
  std::string out_dir;
  std::string export_map, import_map;
  std::string entities_in, entities_out;
  bool report = false, check_leaks = false, junos_mode = false;
  std::vector<std::string> inputs;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        Usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--salt") {
      options.salt = next();
    } else if (arg == "--out") {
      out_dir = next();
    } else if (arg == "--minimized-regexps") {
      options.regex_form = asn::RewriteForm::kMinimizedDfa;
    } else if (arg == "--keep-comments") {
      options.strip_comments = false;
    } else if (arg == "--export-map") {
      export_map = next();
    } else if (arg == "--import-map") {
      import_map = next();
    } else if (arg == "--report") {
      report = true;
    } else if (arg == "--check-leaks") {
      check_leaks = true;
    } else if (arg == "--junos") {
      junos_mode = true;
    } else if (arg == "--entities") {
      entities_in = next();
    } else if (arg == "--entities-out") {
      entities_out = next();
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown option: " << arg << "\n";
      Usage();
      return 2;
    } else {
      inputs.push_back(arg);
    }
  }
  if (options.salt.empty() || inputs.empty()) {
    Usage();
    return 2;
  }

  std::vector<config::ConfigFile> files;
  for (const std::string& path : inputs) {
    std::ifstream in(path);
    if (!in) {
      std::cerr << "cannot read " << path << "\n";
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    files.push_back(config::ConfigFile::FromText(
        std::filesystem::path(path).filename().string(), buffer.str()));
  }

  // Known-entity declarations: "label | asn asn | prefix prefix".
  if (!entities_in.empty()) {
    std::ifstream in(entities_in);
    if (!in) {
      std::cerr << "cannot read entities " << entities_in << "\n";
      return 1;
    }
    std::string line;
    while (std::getline(in, line)) {
      if (confanon::util::Trim(line).empty()) continue;
      const auto fields = confanon::util::Split(line, '|');
      if (fields.size() != 3) {
        std::cerr << "malformed entity line: " << line << "\n";
        return 1;
      }
      core::AnonymizerOptions::KnownEntity entity;
      entity.label = std::string(confanon::util::Trim(fields[0]));
      for (const auto word : confanon::util::SplitWords(fields[1])) {
        std::uint64_t asn = 0;
        if (confanon::util::ParseUint(word, 65535, asn)) {
          entity.asns.push_back(static_cast<std::uint32_t>(asn));
        }
      }
      for (const auto word : confanon::util::SplitWords(fields[2])) {
        if (const auto prefix = net::Prefix::Parse(word)) {
          entity.prefixes.push_back(*prefix);
        }
      }
      options.known_entities.push_back(std::move(entity));
    }
  }

  // Both language modes share the primitives; --junos swaps the rule
  // pack. A small adapter keeps the rest of the tool uniform.
  std::optional<core::Anonymizer> ios;
  std::optional<junos::JunosAnonymizer> junos_anonymizer;
  if (junos_mode) {
    junos::JunosAnonymizerOptions junos_options;
    junos_options.salt = options.salt;
    junos_options.regex_form = options.regex_form;
    junos_options.strip_comments = options.strip_comments;
    junos_anonymizer.emplace(std::move(junos_options));
  } else {
    ios.emplace(options);
  }
  const auto ip_anonymizer = [&]() -> ipanon::IpAnonymizer& {
    return junos_mode ? junos_anonymizer->ip_anonymizer()
                      : ios->ip_anonymizer();
  };
  if (!import_map.empty()) {
    std::ifstream in(import_map);
    if (!in) {
      std::cerr << "cannot read mapping " << import_map << "\n";
      return 1;
    }
    ip_anonymizer().ImportMappings(in);
  }

  const std::vector<config::ConfigFile> anonymized =
      junos_mode ? junos_anonymizer->AnonymizeNetwork(files)
                 : ios->AnonymizeNetwork(files);

  if (out_dir.empty()) {
    for (const auto& file : anonymized) {
      std::cout << "! ===== " << file.name() << " =====\n" << file.ToText();
    }
  } else {
    std::filesystem::create_directories(out_dir);
    for (const auto& file : anonymized) {
      const auto path = std::filesystem::path(out_dir) / (file.name() + ".cfg");
      std::ofstream out(path);
      out << file.ToText();
      if (!out) {
        std::cerr << "cannot write " << path << "\n";
        return 1;
      }
    }
    std::cerr << "wrote " << anonymized.size() << " files to " << out_dir
              << "\n";
  }

  if (!export_map.empty()) {
    std::ofstream out(export_map);
    ip_anonymizer().ExportMappings(out);
    if (!out) {
      std::cerr << "cannot write mapping " << export_map << "\n";
      return 1;
    }
  }
  if (!entities_out.empty()) {
    if (junos_mode) {
      std::cerr << "--entities-out is not supported with --junos\n";
      return 2;
    }
    std::ofstream out(entities_out);
    ios->ExportKnownEntities(out);
    if (!out) {
      std::cerr << "cannot write entities " << entities_out << "\n";
      return 1;
    }
  }
  if (report) {
    std::cerr << (junos_mode ? junos_anonymizer->report()
                             : ios->report())
                     .ToString();
  }
  if (check_leaks) {
    const auto findings = core::LeakDetector::Scan(
        anonymized, junos_mode ? junos_anonymizer->leak_record()
                               : ios->leak_record());
    std::cerr << "leak findings: " << findings.size() << "\n";
    for (const auto& finding : findings) {
      std::cerr << "  " << finding.file << ":" << finding.line_number + 1
                << " [" << finding.matched << "] " << finding.line << "\n";
    }
    return findings.empty() ? 0 : 3;
  }
  return 0;
}
