// confanon_tool — the command-line anonymizer a network operator would
// run (the artifact the paper's clearinghouse workflow distributes:
// "Network owners could download the configuration anonymization tools
// from the portal ... and upload their anonymized configurations").
//
// Usage:
//   confanon_tool --salt SECRET [options] config1 [config2 ...]
//
// Options:
//   --salt SECRET        owner-chosen secret (required)
//   --out DIR            write anonymized files to DIR (default: stdout)
//   --threads N          pipeline worker threads (0 = all cores, the
//                        default; output is byte-identical for any N)
//   --minimized-regexps  emit minimized-DFA regexps instead of alternations
//   --keep-comments      do not strip comments (NOT recommended)
//   --export-map FILE    save the IP mapping for a later consistent run
//   --import-map FILE    preload the IP mapping from an earlier run
//   --report             print the anonymization report to stderr
//   --check-leaks        run the Section 6.1 grep-back and report findings
//   --junos              force JunOS treatment of every input; without it
//                        each file is routed per dialect (IOS vs JunOS
//                        brace syntax) automatically
//   --ios                force IOS treatment of every input
//   --entities FILE      known-entity declarations (paper Section 5), one
//                        per line: "label | asn asn ... | prefix prefix ..."
//   --entities-out FILE  write the anonymized entity groupings
//   --network-dir ROOT   multi-network mode: each immediate subdirectory
//                        of ROOT is one network (own salt "SECRET:name",
//                        own mapping); networks are anonymized
//                        concurrently over the shared --threads budget
//   --metrics-listen H:P serve live Prometheus /metrics (+ /healthz) on
//                        HOST:PORT for the duration of the run (port 0
//                        picks an ephemeral port, printed to stderr)
//   --profile-out FILE   write a flamegraph.pl-compatible folded-stack
//                        profile and print the per-phase wall/IPC table
//                        to stderr after the run
//   --defend-k K         fingerprint defense (src/defense): insert decoy
//                        structure until every router's (subnet-size
//                        histogram, peering degree) fingerprint is shared
//                        by >= K routers of its network; the achieved k
//                        and decoy overhead are printed to stderr
//   --defend-seed S      decoy randomness seed (default 0; decoys are
//                        deterministic per salt + seed)
//   --defend-budget-pct P  cap decoy lines at P% of the corpus (default
//                        35); padding stops honestly when the cap hits
//   --decoy-manifest F   write the decoy manifest (for confanon_audit
//                        --decoys); single-corpus mode only
//
// All files given in one invocation are treated as one network: they share
// the hash memo, IP trie and ASN permutation, so cross-file references
// stay consistent — including across dialects in a mixed corpus. With
// --network-dir, each subdirectory is instead its own network with its own
// mapping, and the set is processed in parallel (byte-identical output for
// any --threads value).
#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/leak_detector.h"
#include "obs/export.h"
#include "obs/exposition.h"
#include "obs/hooks.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "pipeline/pipeline.h"
#include "util/io.h"
#include "util/strings.h"

namespace {

void Usage() {
  std::cerr << "usage: confanon_tool --salt SECRET [--out DIR] [--threads N] "
               "[--minimized-regexps] [--keep-comments]\n"
               "                     [--export-map FILE] [--import-map FILE] "
               "[--report] [--check-leaks] [--junos] [--ios]\n"
               "                     config1 [config2 ...]\n"
               "       confanon_tool --salt SECRET --network-dir ROOT "
               "[--out DIR] [--threads N] [options]\n"
               "       (observability: [--metrics-listen HOST:PORT] "
               "[--profile-out FILE])\n"
               "       (defense: [--defend-k K] [--defend-seed S] "
               "[--defend-budget-pct P] [--decoy-manifest FILE])\n";
}

/// Corpus-level ingest accounting (the io.* metric source).
struct IoTally {
  std::uint64_t bytes_read = 0;
  std::uint64_t read_ns = 0;
  std::uint64_t mmap_files = 0;
};

/// Reads one file into a ConfigFile named after its basename — mmap for
/// large regular files, single-allocation read otherwise; the file's
/// lines alias the backing with no per-line copies. Exits the process
/// with an errno-bearing diagnostic when unreadable.
confanon::config::ConfigFile ReadConfig(const std::filesystem::path& path,
                                        IoTally& io) {
  std::string error;
  auto contents = confanon::util::ReadFileContents(path.string(), &error);
  if (!contents) {
    std::cerr << error << "\n";
    std::exit(1);
  }
  io.bytes_read += contents->view.size();
  io.read_ns += contents->read_ns;
  if (contents->mapped) ++io.mmap_files;
  return confanon::config::ConfigFile::FromBacking(
      path.filename().string(), contents->view, std::move(contents->backing));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace confanon;

  pipeline::PipelineOptions options;
  options.base.salt.clear();
  options.threads = 0;  // all cores; byte-identical regardless
  std::string out_dir;
  std::string export_map, import_map;
  std::string entities_in, entities_out;
  std::string network_dir;
  std::string metrics_listen, profile_out;
  std::string decoy_manifest_out;
  bool report = false, check_leaks = false;
  std::vector<std::string> inputs;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        Usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--salt") {
      options.base.salt = next();
    } else if (arg == "--out") {
      out_dir = next();
    } else if (arg == "--threads") {
      options.threads = std::atoi(next());
    } else if (arg == "--minimized-regexps") {
      options.base.regex_form = asn::RewriteForm::kMinimizedDfa;
    } else if (arg == "--keep-comments") {
      options.base.strip_comments = false;
    } else if (arg == "--export-map") {
      export_map = next();
    } else if (arg == "--import-map") {
      import_map = next();
    } else if (arg == "--report") {
      report = true;
    } else if (arg == "--check-leaks") {
      check_leaks = true;
    } else if (arg == "--junos") {
      options.dialect = pipeline::FileDialect::kJunos;
    } else if (arg == "--ios") {
      options.dialect = pipeline::FileDialect::kIos;
    } else if (arg == "--entities") {
      entities_in = next();
    } else if (arg == "--entities-out") {
      entities_out = next();
    } else if (arg == "--network-dir") {
      network_dir = next();
    } else if (arg == "--defend-k") {
      options.defense.k = std::atoi(next());
    } else if (arg == "--defend-seed") {
      options.defense.seed =
          static_cast<std::uint64_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--defend-budget-pct") {
      options.defense.budget = std::atof(next()) / 100.0;
    } else if (arg == "--decoy-manifest") {
      decoy_manifest_out = next();
    } else if (arg == "--metrics-listen") {
      metrics_listen = next();
    } else if (arg.rfind("--metrics-listen=", 0) == 0) {
      metrics_listen = arg.substr(std::string("--metrics-listen=").size());
    } else if (arg == "--profile-out") {
      profile_out = next();
    } else if (arg.rfind("--profile-out=", 0) == 0) {
      profile_out = arg.substr(std::string("--profile-out=").size());
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown option: " << arg << "\n";
      Usage();
      return 2;
    } else {
      inputs.push_back(arg);
    }
  }
  if (options.base.salt.empty() ||
      (inputs.empty() == network_dir.empty())) {
    Usage();
    return 2;
  }

  // --- live observability (both modes) ---
  obs::MetricsRegistry registry;
  obs::SnapshotExporter exporter(&registry);
  std::unique_ptr<obs::ExpositionServer> metrics_server;
  if (!metrics_listen.empty()) {
    obs::ExpositionServer::Options listen_options;
    if (!obs::ExpositionServer::ParseListenSpec(
            metrics_listen, listen_options.host, listen_options.port)) {
      std::cerr << "bad --metrics-listen spec '" << metrics_listen
                << "' (want HOST:PORT)\n";
      return 2;
    }
    metrics_server = std::make_unique<obs::ExpositionServer>(
        listen_options,
        [&exporter] { return obs::RenderPrometheus(exporter.Capture()); });
    std::string error;
    if (!metrics_server->Start(&error)) {
      std::cerr << "--metrics-listen failed: " << error << "\n";
      return 1;
    }
    std::cerr << "serving /metrics and /healthz on http://"
              << metrics_server->host() << ":" << metrics_server->port()
              << "/\n";
  }
  std::unique_ptr<obs::PhaseProfiler> profiler;
  if (!profile_out.empty()) {
    profiler = std::make_unique<obs::PhaseProfiler>();
  }
  obs::Hooks obs_hooks;
  if (metrics_server != nullptr) obs_hooks.metrics = &registry;
  if (profiler != nullptr) {
    obs_hooks.profiler = profiler.get();
    obs_hooks.trace = profiler.get();  // buffer spans for the folded output
  }
  // Corpus-level I/O accounting; one writer reused across every output
  // file so its buffer is allocated once for the whole run.
  IoTally io_tally;
  util::BufferedWriter writer;
  const auto flush_io_metrics = [&] {
    if (obs_hooks.metrics == nullptr) return;
    registry.CounterNamed("io.bytes_read").Add(io_tally.bytes_read);
    registry.CounterNamed("io.read_ns").Add(io_tally.read_ns);
    registry.CounterNamed("io.mmap_files").Add(io_tally.mmap_files);
    registry.CounterNamed("io.bytes_written").Add(writer.bytes_written());
    registry.CounterNamed("io.write_ns").Add(writer.write_ns());
  };
  // Runs after anonymization in either mode: render the phase table,
  // write the folded profile, and shut the listener down cleanly.
  const auto finish_observability = [&] {
    flush_io_metrics();
    if (profiler != nullptr) {
      const obs::PhaseProfiler::Profile profile = profiler->Finish();
      std::cerr << obs::PhaseProfiler::RenderTable(profile);
      std::ofstream folded(profile_out, std::ios::trunc);
      if (folded) {
        obs::PhaseProfiler::WriteFolded(profile, folded);
        std::cerr << "wrote " << profile_out << " (" << profile.spans.size()
                  << " folded stacks)\n";
      } else {
        std::cerr << "cannot write profile " << profile_out << "\n";
      }
    }
    if (metrics_server != nullptr) metrics_server->Stop();
  };

  // --- multi-network mode: one network per subdirectory of ROOT ---
  if (!network_dir.empty()) {
    if (!export_map.empty() || !import_map.empty() || !entities_in.empty() ||
        !entities_out.empty()) {
      std::cerr << "--network-dir is incompatible with map/entity options "
                   "(mappings are per network)\n";
      return 2;
    }
    if (!decoy_manifest_out.empty()) {
      std::cerr << "--decoy-manifest is incompatible with --network-dir "
                   "(the manifest covers one corpus)\n";
      return 2;
    }
    std::vector<std::string> names;
    for (const auto& entry :
         std::filesystem::directory_iterator(network_dir)) {
      if (entry.is_directory()) {
        names.push_back(entry.path().filename().string());
      }
    }
    std::sort(names.begin(), names.end());
    if (names.empty()) {
      std::cerr << "no network subdirectories under " << network_dir << "\n";
      return 1;
    }
    std::vector<pipeline::NetworkTask> tasks;
    tasks.reserve(names.size());
    {
      obs::PhaseProfiler::ScopedPhase phase(obs_hooks.profiler, nullptr,
                                            "ingest");
      for (const std::string& name : names) {
        pipeline::NetworkTask task;
        task.options = options;
        task.options.threads = 0;  // share the set's budget
        task.options.base.salt = options.base.salt + ":" + name;
        std::vector<std::filesystem::path> paths;
        for (const auto& entry : std::filesystem::directory_iterator(
                 std::filesystem::path(network_dir) / name)) {
          if (entry.is_regular_file()) paths.push_back(entry.path());
        }
        std::sort(paths.begin(), paths.end());
        for (const auto& path : paths) {
          task.files.push_back(ReadConfig(path, io_tally));
        }
        tasks.push_back(std::move(task));
      }
    }
    // The set-level context carries the shared thread budget and hooks;
    // each task's per-network context/session is built inside.
    core::ServiceOptions set_options = options;
    const auto set_context =
        pipeline::MakeServiceContext(std::move(set_options));
    set_context->install_hooks(obs_hooks);
    const auto results = pipeline::AnonymizeNetworkSet(tasks, *set_context);

    core::AnonymizationReport merged_report;
    std::size_t leak_findings = 0;
    for (std::size_t i = 0; i < results.size(); ++i) {
      if (out_dir.empty()) {
        for (const auto& file : results[i].files) {
          std::cout << "! ===== " << names[i] << "/" << file.name()
                    << " =====\n"
                    << file.ToText();
        }
      } else {
        obs::PhaseProfiler::ScopedPhase phase(obs_hooks.profiler, nullptr,
                                              "emit");
        const auto dir = std::filesystem::path(out_dir) / names[i];
        std::filesystem::create_directories(dir);
        for (const auto& file : results[i].files) {
          const auto path = dir / (file.name() + ".cfg");
          std::string error;
          if (!writer.Open(path.string(), &error)) {
            std::cerr << error << "\n";
            return 1;
          }
          file.AppendTo(writer);
          if (!writer.Close()) {
            std::cerr << writer.error() << "\n";
            return 1;
          }
        }
      }
      merged_report.Merge(results[i].report);
      if (options.defense.k > 1) {
        std::cerr << names[i] << ": defense k target "
                  << results[i].defense.target_k << ", achieved "
                  << results[i].defense.achieved_k << ", "
                  << results[i].defense.decoy_lines << " decoy lines\n";
      }
      if (check_leaks) {
        for (const auto& finding : core::LeakDetector::Scan(
                 results[i].files, results[i].leak_record)) {
          ++leak_findings;
          std::cerr << "  " << names[i] << "/" << finding.file << ":"
                    << finding.line_number + 1 << " [" << finding.matched
                    << "] " << finding.line << "\n";
        }
      }
    }
    if (!out_dir.empty()) {
      std::cerr << "wrote " << results.size() << " networks to " << out_dir
                << "\n";
    }
    if (report) std::cerr << merged_report.ToString();
    finish_observability();
    if (check_leaks) {
      std::cerr << "leak findings: " << leak_findings << "\n";
      return leak_findings == 0 ? 0 : 3;
    }
    return 0;
  }

  std::vector<config::ConfigFile> files;
  {
    obs::PhaseProfiler::ScopedPhase phase(obs_hooks.profiler, nullptr,
                                          "ingest");
    for (const std::string& path : inputs) {
      files.push_back(ReadConfig(path, io_tally));
    }
  }

  // Known-entity declarations: "label | asn asn | prefix prefix".
  if (!entities_in.empty()) {
    std::ifstream in(entities_in);
    if (!in) {
      std::cerr << "cannot read entities " << entities_in << "\n";
      return 1;
    }
    std::string line;
    while (std::getline(in, line)) {
      if (confanon::util::Trim(line).empty()) continue;
      const auto fields = confanon::util::Split(line, '|');
      if (fields.size() != 3) {
        std::cerr << "malformed entity line: " << line << "\n";
        return 1;
      }
      core::AnonymizerOptions::KnownEntity entity;
      entity.label = std::string(confanon::util::Trim(fields[0]));
      for (const auto word : confanon::util::SplitWords(fields[1])) {
        std::uint64_t asn = 0;
        if (confanon::util::ParseUint(word, 65535, asn)) {
          entity.asns.push_back(static_cast<std::uint32_t>(asn));
        }
      }
      for (const auto word : confanon::util::SplitWords(fields[2])) {
        if (const auto prefix = net::Prefix::Parse(word)) {
          entity.prefixes.push_back(*prefix);
        }
      }
      options.base.known_entities.push_back(std::move(entity));
    }
  }

  // One context + session per invocation (the Session-API spelling of
  // the classic batch run): per-file dialect routing over one shared
  // mapping, `--threads` workers, byte-identical output for any count.
  const std::shared_ptr<core::ServiceContext> context =
      pipeline::MakeServiceContext(std::move(options));
  context->install_hooks(obs_hooks);
  pipeline::CorpusPipeline pipeline(context, context->CreateSession());

  if (!import_map.empty()) {
    std::string error;
    const auto text = util::ReadFileFully(import_map, &error);
    if (!text) {
      std::cerr << error << "\n";
      return 1;
    }
    pipeline.ip_anonymizer().ImportMappings(std::string_view(*text));
  }

  const std::vector<config::ConfigFile> anonymized =
      pipeline.AnonymizeCorpus(files);

  if (out_dir.empty()) {
    for (const auto& file : anonymized) {
      std::cout << "! ===== " << file.name() << " =====\n" << file.ToText();
    }
  } else {
    obs::PhaseProfiler::ScopedPhase phase(obs_hooks.profiler, nullptr,
                                          "emit");
    std::filesystem::create_directories(out_dir);
    for (const auto& file : anonymized) {
      const auto path = std::filesystem::path(out_dir) / (file.name() + ".cfg");
      std::string error;
      if (!writer.Open(path.string(), &error)) {
        std::cerr << error << "\n";
        return 1;
      }
      file.AppendTo(writer);
      if (!writer.Close()) {
        std::cerr << writer.error() << "\n";
        return 1;
      }
    }
    std::cerr << "wrote " << anonymized.size() << " files to " << out_dir
              << "\n";
  }

  if (options.defense.k > 1) {
    std::cerr << pipeline.defense_report().ToString() << "\n";
  }
  if (!decoy_manifest_out.empty()) {
    std::ofstream out(decoy_manifest_out, std::ios::trunc);
    out << pipeline.decoy_manifest().Serialize();
    if (!out) {
      std::cerr << "cannot write decoy manifest " << decoy_manifest_out
                << "\n";
      return 1;
    }
  }
  if (!export_map.empty()) {
    std::ofstream out(export_map);
    pipeline.ip_anonymizer().ExportMappings(out);
    if (!out) {
      std::cerr << "cannot write mapping " << export_map << "\n";
      return 1;
    }
  }
  if (!entities_out.empty()) {
    std::ofstream out(entities_out);
    pipeline.ExportKnownEntities(out);
    if (!out) {
      std::cerr << "cannot write entities " << entities_out << "\n";
      return 1;
    }
  }
  if (report) {
    std::cerr << pipeline.report().ToString();
  }
  finish_observability();
  if (check_leaks) {
    const auto findings =
        core::LeakDetector::Scan(anonymized, pipeline.leak_record());
    std::cerr << "leak findings: " << findings.size() << "\n";
    for (const auto& finding : findings) {
      std::cerr << "  " << finding.file << ":" << finding.line_number + 1
                << " [" << finding.matched << "] " << finding.line << "\n";
    }
    return findings.empty() ? 0 : 3;
  }
  return 0;
}
