// Clearinghouse demo (paper Section 7: "Towards a Clearinghouse of
// Configuration Data").
//
// Simulates the single-blind workflow the paper proposes: several network
// owners each anonymize their own configs with their own secret salt and
// "upload" only the anonymized corpora. A researcher with access to the
// portal then runs cross-network analyses over the anonymized data and
// produces exactly the kind of results the paper argues such a repository
// would enable — protocol usage across operators, routing-design shapes,
// address-space structure — without ever seeing an identity.
#include <cstdio>
#include <map>
#include <vector>

#include "analysis/characteristics.h"
#include "analysis/compartment.h"
#include "analysis/design_extract.h"
#include "core/anonymizer.h"
#include "core/leak_detector.h"
#include "gen/config_writer.h"
#include "gen/network_gen.h"
#include "util/stats.h"

int main() {
  using namespace confanon;

  const int owners = 8;
  std::printf("== clearinghouse: %d owners upload anonymized configs ==\n\n",
              owners);

  // --- owner side: each anonymizes privately ---
  std::vector<std::vector<config::ConfigFile>> portal;  // what gets uploaded
  for (int i = 0; i < owners; ++i) {
    gen::GeneratorParams params;
    params.seed = 880000 + static_cast<std::uint64_t>(i);
    params.router_count = 8 + (i % 4) * 8;
    params.profile = (i % 3 == 2) ? gen::NetworkProfile::kEnterprise
                                  : gen::NetworkProfile::kBackbone;
    const auto network = gen::GenerateNetwork(params, i);
    const auto pre = gen::WriteNetworkConfigs(network);

    core::AnonymizerOptions options;
    options.salt = "owner-" + std::to_string(i) + "-private-secret";
    core::Anonymizer anonymizer(std::move(options));
    auto post = anonymizer.AnonymizeNetwork(pre);

    // The owner verifies before uploading (the paper: "after taking
    // whatever additional steps they felt necessary to verify").
    const auto findings =
        core::LeakDetector::Scan(post, anonymizer.leak_record());
    std::size_t textual = 0;
    for (const auto& finding : findings) {
      textual += finding.kind == core::LeakFinding::Kind::kHashedWord;
    }
    std::printf("owner %d ('%s'): %2zu routers anonymized, %zu textual "
                "leak findings -> %s\n",
                i, network.name.c_str(), post.size(), textual,
                textual == 0 ? "uploads" : "WITHHOLDS");
    if (textual == 0) portal.push_back(std::move(post));
  }

  // --- researcher side: cross-network analysis on anonymized data ---
  std::printf("\n== researcher report (anonymized data only) ==\n\n");
  std::map<std::string, int> igp_usage;
  util::Summary routers_per_network, links_per_network, ebgp_per_network;
  util::Histogram global_subnets;
  int compartmentalized = 0;

  for (const auto& corpus : portal) {
    const analysis::NetworkCharacteristics stats =
        analysis::ExtractCharacteristics(corpus);
    const analysis::NetworkDesign design = analysis::ExtractDesign(corpus);
    routers_per_network.Add(static_cast<double>(stats.router_count));
    links_per_network.Add(static_cast<double>(design.links.size()));
    ebgp_per_network.Add(static_cast<double>(stats.ebgp_session_count));
    for (const auto& [proto, count] : stats.protocol_counts) {
      if (count > 0 && proto != "bgp") ++igp_usage[proto];
    }
    for (int bucket : stats.subnet_sizes.Buckets()) {
      global_subnets.Add(bucket, stats.subnet_sizes.Get(bucket));
    }
    compartmentalized += analysis::DetectCompartmentalization(corpus) !=
                         analysis::CompartmentMechanism::kNone;
  }

  std::printf("networks in repository: %zu\n", portal.size());
  std::printf("routers per network:    %s\n",
              routers_per_network.Describe().c_str());
  std::printf("links per network:      %s\n",
              links_per_network.Describe().c_str());
  std::printf("eBGP sessions/network:  %s\n",
              ebgp_per_network.Describe().c_str());
  std::printf("IGP usage (networks running each):");
  for (const auto& [proto, count] : igp_usage) {
    std::printf("  %s=%d", proto.c_str(), count);
  }
  std::printf("\nglobal subnet-size structure:");
  for (int bucket : global_subnets.Buckets()) {
    std::printf(" /%d=%llu", bucket,
                static_cast<unsigned long long>(global_subnets.Get(bucket)));
  }
  std::printf("\nnetworks with internal compartmentalization: %d/%zu\n",
              compartmentalized, portal.size());
  std::printf("\nNo owner identity was available to the researcher at any "
              "point.\n");
  return portal.size() == static_cast<std::size_t>(owners) ? 0 : 1;
}
