// confanon_audit: map-free static audit of config corpora (docs/AUDIT.md)
// and static verification of anonymization policies (docs/VERIFY.md).
//
// Usage:
//   confanon_audit [options] DIR             residue lint of one corpus
//   confanon_audit --pre DIR --post DIR      pre/post isomorphism check
//   confanon_audit --policy [options]        static policy verification
//
// Options:
//   --threads N     worker threads for per-file scanning (0 = all cores)
//   --ios/--junos   force the dialect (default: per-file auto-detection)
//   --sarif FILE    also write the findings as SARIF 2.1.0
//   --metrics FILE  write the audit.*/verify.* metrics snapshot as JSON
//   --decoys FILE   pair mode only: the decoy manifest confanon_tool
//                   --decoy-manifest wrote; the flagged insertions are
//                   verified (no decoy shadows real space, AUD-D001) and
//                   stripped before the isomorphism check, so a defended
//                   corpus still proves its ORIGINAL structure intact
//
// Policy-mode options (see docs/VERIFY.md):
//   --passlist FILE additional pass-list entries, one token per line,
//                   merged onto both dialect baselines (the daemon's
//                   per-tenant shape)
//   --disable RULE  disable an anonymizer rule (repeatable; the verifier
//                   reports the uncovered value class)
//   --strict        also fail (exit 3) on warning findings
//
// Exit codes: 0 = clean, 1 = I/O error, 2 = usage error, 3 = audit found
// error-severity findings (or warnings under --strict). Warnings and
// notes otherwise never fail the run.
//
// The auditor holds no anonymizer state — no maps, no salt. A single
// trailing ".cfg" is stripped from loaded file names so corpus-internal
// names match what the anonymizer saw (confanon_tool appends ".cfg" when
// writing output to a directory).
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "audit/audit.h"
#include "audit/sarif.h"
#include "config/document.h"
#include "core/anonymizer.h"
#include "passlist/passlist.h"
#include "util/io.h"
#include "util/strings.h"
#include "obs/metrics.h"
#include "verify/verify.h"

namespace {

void Usage() {
  std::cerr << "usage: confanon_audit [--threads N] [--ios|--junos] "
               "[--sarif FILE] [--metrics FILE] DIR\n"
               "       confanon_audit --pre DIR --post DIR "
               "[--decoys FILE] [options]\n"
               "       confanon_audit --policy [--passlist FILE] "
               "[--disable RULE] [--strict] [options]\n";
}

/// Loads one token per line (blank lines and '#' comments skipped) into
/// an extra pass-list, the same shape the daemon accepts per tenant.
bool LoadPassListFile(const std::string& path,
                      confanon::passlist::PassList& out) {
  std::string error;
  const auto text = confanon::util::ReadFileFully(path, &error);
  if (!text) {
    std::cerr << "confanon_audit: " << error << "\n";
    return false;
  }
  std::string_view rest = *text;
  while (!rest.empty()) {
    const std::size_t eol = rest.find('\n');
    const std::string_view line = rest.substr(0, eol);
    rest = eol == std::string_view::npos ? std::string_view{}
                                         : rest.substr(eol + 1);
    const auto token = confanon::util::Trim(line);
    if (token.empty() || token.front() == '#') continue;
    out.Add(token);
  }
  return true;
}

std::string StripCfgSuffix(std::string name) {
  const std::string suffix = ".cfg";
  if (name.size() > suffix.size() &&
      name.compare(name.size() - suffix.size(), suffix.size(), suffix) == 0) {
    name.resize(name.size() - suffix.size());
  }
  return name;
}

bool LoadCorpus(const std::string& dir,
                std::vector<confanon::config::ConfigFile>& out) {
  std::error_code ec;
  std::vector<std::filesystem::path> paths;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.is_regular_file()) paths.push_back(entry.path());
  }
  if (ec) {
    std::cerr << "confanon_audit: cannot read " << dir << ": " << ec.message()
              << "\n";
    return false;
  }
  std::sort(paths.begin(), paths.end());
  for (const auto& path : paths) {
    std::string error;
    auto contents = confanon::util::ReadFileContents(path.string(), &error);
    if (!contents) {
      std::cerr << "confanon_audit: " << error << "\n";
      return false;
    }
    out.push_back(confanon::config::ConfigFile::FromBacking(
        StripCfgSuffix(path.filename().string()), contents->view,
        std::move(contents->backing)));
  }
  return true;
}

bool WriteFile(const std::string& path, const std::string& content,
               const char* what) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "confanon_audit: cannot write " << what << " to " << path
              << "\n";
    return false;
  }
  out << content;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string lint_dir;
  std::string pre_dir;
  std::string post_dir;
  std::string sarif_path;
  std::string metrics_path;
  std::string decoys_path;
  bool policy_mode = false;
  bool strict = false;
  confanon::audit::AuditOptions options;
  confanon::core::AnonymizerOptions policy_options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        Usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--pre") {
      pre_dir = next();
    } else if (arg == "--post") {
      post_dir = next();
    } else if (arg == "--threads") {
      options.threads = std::atoi(next());
    } else if (arg == "--ios") {
      options.dialect = confanon::audit::DialectMode::kIos;
    } else if (arg == "--junos") {
      options.dialect = confanon::audit::DialectMode::kJunos;
    } else if (arg == "--sarif") {
      sarif_path = next();
    } else if (arg == "--metrics") {
      metrics_path = next();
    } else if (arg == "--decoys") {
      decoys_path = next();
    } else if (arg == "--policy") {
      policy_mode = true;
    } else if (arg == "--passlist") {
      if (!LoadPassListFile(next(), policy_options.extra_pass_list)) return 1;
    } else if (arg == "--disable") {
      policy_options.disabled_rules.insert(next());
    } else if (arg == "--strict") {
      strict = true;
    } else if (!arg.empty() && arg[0] == '-') {
      Usage();
      return 2;
    } else if (lint_dir.empty()) {
      lint_dir = arg;
    } else {
      Usage();
      return 2;
    }
  }
  const bool pair_mode = !pre_dir.empty() || !post_dir.empty();
  if (policy_mode && (pair_mode || !lint_dir.empty())) {
    Usage();
    return 2;
  }
  if (pair_mode && (pre_dir.empty() || post_dir.empty() || !lint_dir.empty())) {
    Usage();
    return 2;
  }
  if (!policy_mode && !pair_mode && lint_dir.empty()) {
    Usage();
    return 2;
  }
  if (!decoys_path.empty() && !pair_mode) {
    std::cerr << "confanon_audit: --decoys requires --pre/--post\n";
    return 2;
  }

  confanon::obs::MetricsRegistry metrics;
  options.metrics = &metrics;

  confanon::audit::AuditResult result;
  if (policy_mode) {
    result = confanon::verify::VerifyEngineOptions(policy_options);
    // Mirror the verifier's stats into the verify.* metrics family so
    // --metrics serves the same counters the daemon exposes.
    for (const auto& [name, value] : result.stats) {
      metrics.CounterNamed(name).Add(value);
    }
  } else if (pair_mode) {
    std::vector<confanon::config::ConfigFile> pre;
    std::vector<confanon::config::ConfigFile> post;
    if (!LoadCorpus(pre_dir, pre) || !LoadCorpus(post_dir, post)) return 1;
    if (decoys_path.empty()) {
      result = confanon::audit::ComparePair(pre, post, options);
    } else {
      std::string error;
      const auto text = confanon::util::ReadFileFully(decoys_path, &error);
      if (!text) {
        std::cerr << "confanon_audit: " << error << "\n";
        return 1;
      }
      const auto manifest = confanon::defense::DecoyManifest::Parse(*text);
      if (!manifest) {
        std::cerr << "confanon_audit: malformed decoy manifest "
                  << decoys_path << "\n";
        return 1;
      }
      result =
          confanon::audit::ComparePairDefended(pre, post, *manifest, options);
    }
  } else {
    std::vector<confanon::config::ConfigFile> files;
    if (!LoadCorpus(lint_dir, files)) return 1;
    result = confanon::audit::LintCorpus(files, options);
  }

  std::cout << result.ToText();
  if (!sarif_path.empty() &&
      !WriteFile(sarif_path, confanon::audit::ToSarif(result), "SARIF")) {
    return 1;
  }
  if (!metrics_path.empty() &&
      !WriteFile(metrics_path, metrics.Snapshot().ToJson(), "metrics")) {
    return 1;
  }
  if (result.HasErrors()) return 3;
  if (strict &&
      result.CountAtLeast(confanon::audit::Severity::kWarning) >
          result.ErrorCount()) {
    return 3;
  }
  return 0;
}
