// confanon_audit: map-free static audit of config corpora (docs/AUDIT.md).
//
// Usage:
//   confanon_audit [options] DIR             residue lint of one corpus
//   confanon_audit --pre DIR --post DIR      pre/post isomorphism check
//
// Options:
//   --threads N     worker threads for per-file scanning (0 = all cores)
//   --ios/--junos   force the dialect (default: per-file auto-detection)
//   --sarif FILE    also write the findings as SARIF 2.1.0
//   --metrics FILE  write the audit.* metrics snapshot as JSON
//
// Exit codes: 0 = clean, 1 = I/O error, 2 = usage error, 3 = audit found
// error-severity findings. Warnings and notes never fail the run.
//
// The auditor holds no anonymizer state — no maps, no salt. A single
// trailing ".cfg" is stripped from loaded file names so corpus-internal
// names match what the anonymizer saw (confanon_tool appends ".cfg" when
// writing output to a directory).
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "audit/audit.h"
#include "audit/sarif.h"
#include "config/document.h"
#include "util/io.h"
#include "obs/metrics.h"

namespace {

void Usage() {
  std::cerr << "usage: confanon_audit [--threads N] [--ios|--junos] "
               "[--sarif FILE] [--metrics FILE] DIR\n"
               "       confanon_audit --pre DIR --post DIR [options]\n";
}

std::string StripCfgSuffix(std::string name) {
  const std::string suffix = ".cfg";
  if (name.size() > suffix.size() &&
      name.compare(name.size() - suffix.size(), suffix.size(), suffix) == 0) {
    name.resize(name.size() - suffix.size());
  }
  return name;
}

bool LoadCorpus(const std::string& dir,
                std::vector<confanon::config::ConfigFile>& out) {
  std::error_code ec;
  std::vector<std::filesystem::path> paths;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.is_regular_file()) paths.push_back(entry.path());
  }
  if (ec) {
    std::cerr << "confanon_audit: cannot read " << dir << ": " << ec.message()
              << "\n";
    return false;
  }
  std::sort(paths.begin(), paths.end());
  for (const auto& path : paths) {
    std::string error;
    auto contents = confanon::util::ReadFileContents(path.string(), &error);
    if (!contents) {
      std::cerr << "confanon_audit: " << error << "\n";
      return false;
    }
    out.push_back(confanon::config::ConfigFile::FromBacking(
        StripCfgSuffix(path.filename().string()), contents->view,
        std::move(contents->backing)));
  }
  return true;
}

bool WriteFile(const std::string& path, const std::string& content,
               const char* what) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "confanon_audit: cannot write " << what << " to " << path
              << "\n";
    return false;
  }
  out << content;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string lint_dir;
  std::string pre_dir;
  std::string post_dir;
  std::string sarif_path;
  std::string metrics_path;
  confanon::audit::AuditOptions options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        Usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--pre") {
      pre_dir = next();
    } else if (arg == "--post") {
      post_dir = next();
    } else if (arg == "--threads") {
      options.threads = std::atoi(next());
    } else if (arg == "--ios") {
      options.dialect = confanon::audit::DialectMode::kIos;
    } else if (arg == "--junos") {
      options.dialect = confanon::audit::DialectMode::kJunos;
    } else if (arg == "--sarif") {
      sarif_path = next();
    } else if (arg == "--metrics") {
      metrics_path = next();
    } else if (!arg.empty() && arg[0] == '-') {
      Usage();
      return 2;
    } else if (lint_dir.empty()) {
      lint_dir = arg;
    } else {
      Usage();
      return 2;
    }
  }
  const bool pair_mode = !pre_dir.empty() || !post_dir.empty();
  if (pair_mode && (pre_dir.empty() || post_dir.empty() || !lint_dir.empty())) {
    Usage();
    return 2;
  }
  if (!pair_mode && lint_dir.empty()) {
    Usage();
    return 2;
  }

  confanon::obs::MetricsRegistry metrics;
  options.metrics = &metrics;

  confanon::audit::AuditResult result;
  if (pair_mode) {
    std::vector<confanon::config::ConfigFile> pre;
    std::vector<confanon::config::ConfigFile> post;
    if (!LoadCorpus(pre_dir, pre) || !LoadCorpus(post_dir, post)) return 1;
    result = confanon::audit::ComparePair(pre, post, options);
  } else {
    std::vector<confanon::config::ConfigFile> files;
    if (!LoadCorpus(lint_dir, files)) return 1;
    result = confanon::audit::LintCorpus(files, options);
  }

  std::cout << result.ToText();
  if (!sarif_path.empty() &&
      !WriteFile(sarif_path, confanon::audit::ToSarif(result), "SARIF")) {
    return 1;
  }
  if (!metrics_path.empty() &&
      !WriteFile(metrics_path, metrics.Snapshot().ToJson(), "metrics")) {
    return 1;
  }
  return result.HasErrors() ? 3 : 0;
}
