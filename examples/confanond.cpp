// confanond — long-running anonymization service over the Session API.
//
// The batch tools (confanon_tool) build a ServiceContext + Session per
// invocation; confanond keeps ONE process-lifetime ServiceContext and a
// lazily grown registry of per-tenant Sessions, so a clearinghouse can
// anonymize configs for many networks over HTTP without re-seeding
// per-request state. See docs/DAEMON.md for the full API contract.
//
//   confanond --salt SECRET [--listen HOST:PORT] [--threads N]
//             [--workers N] [--queue N] [--max-body BYTES]
//             [--profile FILE.folded] [--allow-policy-warnings]
//
//   --salt SECRET     base secret; tenant T runs with salt "SECRET:T"
//                     (the confanon_tool --network-dir convention)
//   --listen H:P      bind address (default 127.0.0.1:8642; port 0 picks
//                     an ephemeral port and prints it)
//   --threads N       worker threads per request pipeline (0 = auto)
//   --workers N       concurrent HTTP handler threads (default 4)
//   --queue N         admission control: pending connections beyond this
//                     are answered 429 (default 16)
//   --max-body BYTES  request body cap, answered 413 beyond (default 1MiB)
//   --profile FILE    write a folded flamegraph profile on shutdown and
//                     print the per-phase table
//   --allow-policy-warnings
//                     start (and accept tenant pass-lists) despite
//                     warning-severity verifier findings; errors always
//                     refuse (docs/VERIFY.md)
//   --defend-k K      run the fingerprint defense (src/defense) on every
//                     request: decoy structure is added until each
//                     router's fingerprint is shared by >= K routers of
//                     its tenant's stream; /v1/sessions reports the
//                     achieved k and decoy volume per tenant
//   --defend-seed S   decoy randomness seed (default 0)
//   --defend-budget-pct P  decoy-line budget as a percent (default 35)
//
// Startup gate: MakeServiceContext statically verifies the anonymization
// policy (src/verify). A verdict with errors — or warnings without
// --allow-policy-warnings — prints the most severe finding and exits 1
// before the listener ever binds: a daemon over a provably leaky policy
// must not come up.
//
// ONE listener serves everything (satellite 2 of the daemon issue): the
// daemon's /v1/* routes hang off the same obs::ExpositionServer that
// serves GET /metrics (live Prometheus exposition of the service.* and
// engine metrics) and GET /healthz. SIGTERM/SIGINT drain and stop the
// listener, print a summary, and exit 0.
#include <csignal>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>

#include "confanon.h"
#include "obs/export.h"
#include "obs/exposition.h"
#include "obs/profiler.h"
#include "pipeline/pipeline.h"
#include "service/service.h"

namespace {

std::atomic<bool> g_stop{false};

void OnSignal(int) { g_stop.store(true, std::memory_order_relaxed); }

void Usage() {
  std::cerr
      << "usage: confanond --salt SECRET [--listen HOST:PORT] [--threads N]\n"
         "                 [--workers N] [--queue N] [--max-body BYTES]\n"
         "                 [--profile FILE.folded] [--allow-policy-warnings]\n"
         "                 [--defend-k K] [--defend-seed S] "
         "[--defend-budget-pct P]\n";
}

bool ParseCount(const std::string& text, std::uint64_t& out) {
  if (text.empty()) return false;
  out = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
    out = out * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace confanon;

  core::ServiceOptions options;
  options.base.salt.clear();
  std::string listen = "127.0.0.1:8642";
  std::string profile_out;
  std::uint64_t workers = 4;
  std::uint64_t queue = 16;
  std::uint64_t max_body = 1 << 20;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::cerr << flag << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    std::uint64_t count = 0;
    if (arg == "--salt") {
      options.base.salt = value("--salt");
    } else if (arg == "--listen") {
      listen = value("--listen");
    } else if (arg == "--threads") {
      if (!ParseCount(value("--threads"), count)) return 2;
      options.threads = static_cast<int>(count);
    } else if (arg == "--workers") {
      if (!ParseCount(value("--workers"), count) || count == 0) return 2;
      workers = count;
    } else if (arg == "--queue") {
      if (!ParseCount(value("--queue"), count)) return 2;
      queue = count;
    } else if (arg == "--max-body") {
      if (!ParseCount(value("--max-body"), count) || count == 0) return 2;
      max_body = count;
    } else if (arg == "--defend-k") {
      if (!ParseCount(value("--defend-k"), count)) return 2;
      options.defense.k = static_cast<int>(count);
    } else if (arg == "--defend-seed") {
      if (!ParseCount(value("--defend-seed"), count)) return 2;
      options.defense.seed = count;
    } else if (arg == "--defend-budget-pct") {
      if (!ParseCount(value("--defend-budget-pct"), count)) return 2;
      options.defense.budget = static_cast<double>(count) / 100.0;
    } else if (arg == "--profile") {
      profile_out = value("--profile");
    } else if (arg == "--allow-policy-warnings") {
      options.allow_policy_warnings = true;
    } else {
      Usage();
      return 2;
    }
  }
  if (options.base.salt.empty()) {
    Usage();
    return 2;
  }

  // --- observability: one registry, one exporter, optional profiler ---
  obs::MetricsRegistry registry;
  obs::SnapshotExporter exporter(&registry);
  std::unique_ptr<obs::PhaseProfiler> profiler;
  if (!profile_out.empty()) profiler = std::make_unique<obs::PhaseProfiler>();
  obs::Hooks hooks;
  hooks.metrics = &registry;
  if (profiler != nullptr) {
    hooks.profiler = profiler.get();
    hooks.trace = profiler.get();
  }

  // --- the process-lifetime context and the tenant service over it ---
  std::shared_ptr<core::ServiceContext> context =
      pipeline::MakeServiceContext(options);
  // Startup gate: refuse to serve over a provably leaky policy. The
  // verdict was recorded by MakeServiceContext (options.verify_policy).
  const core::PolicyVerdict& verdict = context->policy_verdict();
  if (verdict.verified &&
      (verdict.errors > 0 ||
       (verdict.warnings > 0 && !options.allow_policy_warnings))) {
    std::cerr << "confanond: policy verification failed ("
              << verdict.errors << " errors, " << verdict.warnings
              << " warnings): " << verdict.first_finding << "\n";
    if (verdict.errors == 0) {
      std::cerr << "confanond: pass --allow-policy-warnings to start "
                   "anyway\n";
    }
    return 1;
  }
  context->install_hooks(hooks);
  // The startup verdict, visible on /metrics from the first scrape (the
  // full verify.* counter family accrues whenever /v1/passlist verifies
  // a tenant list).
  registry.GaugeNamed("verify.errors")
      .Set(static_cast<std::int64_t>(verdict.errors));
  registry.GaugeNamed("verify.warnings")
      .Set(static_cast<std::int64_t>(verdict.warnings));
  registry.GaugeNamed("verify.notes")
      .Set(static_cast<std::int64_t>(verdict.notes));
  service::AnonymizationService anonymization(context);

  // --- ONE listener: /metrics + /healthz + the daemon routes ---
  obs::ExpositionServer::Options server_options;
  if (!obs::ExpositionServer::ParseListenSpec(listen, server_options.host,
                                              server_options.port)) {
    std::cerr << "bad --listen spec '" << listen << "' (want HOST:PORT)\n";
    return 2;
  }
  server_options.handler_threads = static_cast<int>(workers);
  server_options.max_pending = queue;
  server_options.max_body_bytes = max_body;
  server_options.overload_status = 429;
  obs::ExpositionServer* server_ptr = nullptr;
  obs::ExpositionServer server(
      server_options, [&exporter, &registry, &server_ptr] {
        // The bounded-queue rejection count lives in the listener; mirror
        // it into the registry so one scrape carries everything.
        if (server_ptr != nullptr) {
          registry.GaugeNamed("service.rejected").Set(
              static_cast<std::int64_t>(server_ptr->rejected()));
        }
        return obs::RenderPrometheus(exporter.Capture());
      });
  server_ptr = &server;
  anonymization.RegisterRoutes(server);

  std::string error;
  if (!server.Start(&error)) {
    std::cerr << "confanond: cannot listen on " << listen << ": " << error
              << "\n";
    return 1;
  }
  std::signal(SIGTERM, OnSignal);
  std::signal(SIGINT, OnSignal);
  std::cout << "confanond listening on http://" << server.host() << ":"
            << server.port() << "/ (workers=" << workers << ", queue=" << queue
            << ")" << std::endl;

  while (!g_stop.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  server.Stop();
  if (profiler != nullptr) {
    const obs::PhaseProfiler::Profile profile = profiler->Finish();
    std::cerr << obs::PhaseProfiler::RenderTable(profile);
    std::ofstream folded(profile_out, std::ios::trunc);
    if (folded) obs::PhaseProfiler::WriteFolded(profile, folded);
  }
  std::cerr << "confanond: served "
            << registry.CounterNamed("service.requests").Value()
            << " requests across " << anonymization.session_count()
            << " sessions (" << server.rejected()
            << " rejected), shutting down\n";
  return 0;
}
