// Quickstart: anonymize the paper's Figure 1 config.
//
// Builds the example configuration from Section 2 of the paper, runs the
// anonymizer over it, and prints the input, the output, and the run
// report. Every transformation the paper lists for this config is visible
// in the output:
//   (1) comments and the banner are stripped;
//   (2) the owner's public ASN (1111) is permuted;
//   (3) the publicly routable addresses (1.1.1.0/24, ...) are remapped
//       prefix-preservingly while netmasks survive untouched;
//   (4) peer data — UUNET's ASN 701, the community values, the route-map
//       names — is anonymized, with the as-path and community regexps
//       rewritten to accept the permuted languages.
#include <iostream>

#include "core/anonymizer.h"

namespace {

constexpr const char* kFigure1Config = R"(hostname cr1.lax.foo.com
!
banner motd ^C
FooNet contact xxx@foo.com
Access strictly prohibited!
^C
!
interface Ethernet0
 description Foo Corp's LAX Main St offices
 ip address 1.1.1.1 255.255.255.0
!
interface Serial1/0.5 point-to-point
 description cr1.sfo-serial3/0.2
 ip address 1.2.3.4 255.255.255.252
!
router bgp 1111
 redistribute rip
 neighbor 2.2.2.2 remote-as 701
 neighbor 2.2.2.2 route-map UUNET-import in
 neighbor 2.2.2.2 route-map UUNET-export out
!
route-map UUNET-import deny 10
 match as-path 50
 match community 100
route-map UUNET-import permit 20
route-map UUNET-export permit 10
 match ip address 143
 set community 701:7100
!
access-list 143 permit ip 1.1.1.0 0.0.0.255
ip community-list 100 permit 701:7[1-5]..
ip as-path access-list 50 permit (_1239_|_70[2-5]_)
!
router rip
 network 1.0.0.0
)";

}  // namespace

int main() {
  using namespace confanon;

  config::ConfigFile original =
      config::ConfigFile::FromText("cr1.lax.foo.com", kFigure1Config);

  core::AnonymizerOptions options;
  options.salt = "foo-corp-secret";
  core::Anonymizer anonymizer(options);
  const std::vector<config::ConfigFile> anonymized =
      anonymizer.AnonymizeNetwork({original});

  std::cout << "===== pre-anonymization (paper Figure 1) =====\n"
            << original.ToText() << "\n"
            << "===== post-anonymization =====\n"
            << anonymized.front().ToText() << "\n"
            << "===== report =====\n"
            << anonymizer.report().ToString();

  // The grep-back defence of Section 6.1: are any recorded identifiers
  // still visible in the output?
  const auto findings =
      core::LeakDetector::Scan(anonymized, anonymizer.leak_record());
  std::cout << "\nleak findings: " << findings.size() << "\n";
  for (const auto& finding : findings) {
    std::cout << "  [" << finding.matched << "] " << finding.line << "\n";
  }
  return findings.empty() ? 0 : 1;
}
