// confanon_fingerprint — the Section 6.2/6.3 insider attack, run from the
// attacker's chair: given a directory of (anonymized, possibly defended)
// configs, group the routers by their joint structural fingerprint — the
// (subnet-size histogram, eBGP peering degree) pair that anonymization
// preserves by design — and report how anonymous each router is within
// its corpus.
//
// Usage:
//   confanon_fingerprint DIR [--require-k N]
//
// Prints one line per equivalence class (class size, member routers) and
// the corpus minimum k. With --require-k N the exit code becomes 3 when
// any router's class is smaller than N — the CI defense gate's check that
// the decoy pass (confanon_tool --defend-k) actually achieved its target.
//
// Exit codes: 0 = ok, 1 = I/O error, 2 = usage, 3 = --require-k unmet.
#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "analysis/fingerprint.h"
#include "config/document.h"
#include "util/io.h"

namespace {

void Usage() {
  std::cerr << "usage: confanon_fingerprint DIR [--require-k N]\n";
}

std::string StripCfgSuffix(std::string name) {
  const std::string suffix = ".cfg";
  if (name.size() > suffix.size() &&
      name.compare(name.size() - suffix.size(), suffix.size(), suffix) == 0) {
    name.resize(name.size() - suffix.size());
  }
  return name;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace confanon;

  std::string dir;
  std::size_t require_k = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--require-k") {
      if (i + 1 >= argc) {
        Usage();
        return 2;
      }
      require_k = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      Usage();
      return 2;
    } else if (dir.empty()) {
      dir = arg;
    } else {
      Usage();
      return 2;
    }
  }
  if (dir.empty()) {
    Usage();
    return 2;
  }

  std::error_code ec;
  std::vector<std::filesystem::path> paths;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.is_regular_file()) paths.push_back(entry.path());
  }
  if (ec) {
    std::cerr << "confanon_fingerprint: cannot read " << dir << ": "
              << ec.message() << "\n";
    return 1;
  }
  std::sort(paths.begin(), paths.end());
  std::vector<config::ConfigFile> files;
  for (const auto& path : paths) {
    std::string error;
    auto contents = util::ReadFileContents(path.string(), &error);
    if (!contents) {
      std::cerr << "confanon_fingerprint: " << error << "\n";
      return 1;
    }
    files.push_back(config::ConfigFile::FromBacking(
        StripCfgSuffix(path.filename().string()), contents->view,
        std::move(contents->backing)));
  }
  if (files.empty()) {
    std::cerr << "confanon_fingerprint: no files under " << dir << "\n";
    return 1;
  }

  const std::vector<analysis::RouterFingerprint> fingerprints =
      analysis::ExtractRouterFingerprints(files);
  std::map<std::string, std::vector<std::string>> classes;
  for (std::size_t i = 0; i < files.size(); ++i) {
    classes[fingerprints[i].Key()].push_back(files[i].name());
  }

  std::size_t min_k = files.size();
  for (const auto& [key, members] : classes) {
    min_k = std::min(min_k, members.size());
    std::cout << "k=" << members.size() << "  [" << key << "] ";
    for (std::size_t i = 0; i < members.size(); ++i) {
      std::cout << (i == 0 ? "" : " ") << members[i];
    }
    std::cout << "\n";
  }
  std::cout << "routers: " << files.size() << "  classes: " << classes.size()
            << "  min k: " << min_k << "\n";

  if (require_k > 0 && min_k < require_k) {
    std::cerr << "confanon_fingerprint: min k " << min_k
              << " below required " << require_k << "\n";
    return 3;
  }
  return 0;
}
