// Regexp rewriting demo (paper Sections 4.4-4.5).
//
// Shows the language-computation machinery on its own: for a set of
// as-path and community regexps, prints the accepted ASN language, the
// permuted language, and both output forms (the paper's flat alternation
// and the minimized-DFA extension).
#include <iostream>

#include "asn/regex_rewrite.h"

int main() {
  using namespace confanon;

  const asn::AsnMap asn_map("demo-salt");
  const asn::Uint16Permutation values("demo-salt", "community-values");
  const asn::AsnRegexRewriter rewriter(asn_map);
  const asn::CommunityRegexRewriter community_rewriter(asn_map, values);

  const char* patterns[] = {
      "_701_",                 // singleton
      "70[1-3]",               // the paper's worked example
      "(_1239_|_70[2-5]_)",    // Figure 1 line 32
      "_6451[2-5]_",           // private range: untouched
      ".*",                    // full space: untouched
  };

  for (const char* pattern : patterns) {
    std::cout << "pattern: " << pattern << "\n";
    const auto language = asn::TokenLanguage::Compile(pattern).Enumerate();
    std::cout << "  accepts " << language.size() << " ASNs";
    if (language.size() <= 8) {
      std::cout << " {";
      for (std::size_t i = 0; i < language.size(); ++i) {
        std::cout << (i ? "," : "") << language[i];
      }
      std::cout << "}";
    }
    std::cout << "\n";
    const auto alternation =
        rewriter.Rewrite(pattern, asn::RewriteForm::kAlternation);
    const auto minimized =
        rewriter.Rewrite(pattern, asn::RewriteForm::kMinimizedDfa);
    std::cout << "  alternation form: "
              << (alternation.changed ? alternation.pattern : "(unchanged)")
              << "\n";
    std::cout << "  minimized form:   "
              << (minimized.changed ? minimized.pattern : "(unchanged)")
              << "\n\n";
  }

  std::cout << "community pattern: 701:7[1-5]..\n";
  const auto community =
      community_rewriter.Rewrite("701:7[1-5]..", asn::RewriteForm::kMinimizedDfa);
  std::cout << "  minimized form (" << community.pattern.size()
            << " chars): " << community.pattern.substr(0, 120) << "...\n";
  const auto community_alt = community_rewriter.Rewrite(
      "701:7[1-5]..", asn::RewriteForm::kAlternation);
  std::cout << "  alternation form would be " << community_alt.pattern.size()
            << " chars (\"could be very long, but this is not a problem\")\n";
  return 0;
}
