// Anonymize a whole synthetic network and validate the result.
//
// Generates a realistic multi-POP backbone (the stand-in for one of the
// paper's 31 carrier networks), anonymizes all of its router configs with
// shared state, runs both validation suites from Section 5 (independent
// characteristics; reverse-engineered routing design), and runs the leak
// detector from Section 6.1.
//
// Usage: anonymize_network [router_count] [seed]
#include <cstdlib>
#include <iostream>

#include "analysis/validate.h"
#include "core/anonymizer.h"
#include "gen/config_writer.h"
#include "gen/network_gen.h"

int main(int argc, char** argv) {
  using namespace confanon;

  gen::GeneratorParams params;
  params.router_count = argc > 1 ? std::atoi(argv[1]) : 24;
  params.seed = argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 7;
  params.profile = gen::NetworkProfile::kBackbone;

  const gen::NetworkSpec network = gen::GenerateNetwork(params, 0);
  const std::vector<config::ConfigFile> pre =
      gen::WriteNetworkConfigs(network);

  std::size_t total_lines = 0;
  for (const auto& file : pre) total_lines += file.LineCount();
  std::cout << "generated network '" << network.name << "' (AS "
            << network.asn << "): " << pre.size() << " routers, "
            << total_lines << " config lines\n";

  core::AnonymizerOptions options;
  options.salt = "example-network-salt";
  core::Anonymizer anonymizer(options);
  const std::vector<config::ConfigFile> post =
      anonymizer.AnonymizeNetwork(pre);

  std::cout << "\n--- first 40 lines of " << pre.front().name()
            << " before/after ---\n";
  for (std::size_t i = 0; i < 40 && i < pre.front().lines().size(); ++i) {
    std::cout << "  " << pre.front().lines()[i] << "\n";
  }
  std::cout << "  ...\n";
  for (std::size_t i = 0; i < 40 && i < post.front().lines().size(); ++i) {
    std::cout << "  " << post.front().lines()[i] << "\n";
  }

  std::cout << "\n--- anonymization report ---\n"
            << anonymizer.report().ToString();

  const analysis::ValidationResult validation =
      analysis::ValidateNetwork(pre, post, anonymizer);
  std::cout << "\n--- validation (paper Section 5) ---\n";
  std::cout << "suite 1 (characteristics): "
            << (validation.characteristics_match ? "MATCH" : "DIFFER") << "\n";
  for (const auto& diff : validation.characteristics_diffs) {
    std::cout << "    " << diff << "\n";
  }
  std::cout << "suite 2 (routing design, exact under maps): "
            << (validation.design_match ? "MATCH" : "DIFFER") << "\n";
  for (const auto& diff : validation.design_diffs) {
    std::cout << "    " << diff << "\n";
  }
  std::cout << "suite 2b (structural projection): "
            << (validation.structural_match ? "MATCH" : "DIFFER") << "\n";
  for (const auto& diff : validation.structural_diffs) {
    std::cout << "    " << diff << "\n";
  }

  const auto findings =
      core::LeakDetector::Scan(post, anonymizer.leak_record());
  // Numeric findings are triage items, not failures: short ASNs collide
  // with unrelated integers (the paper's Genuity AS-1 example — try seed 5,
  // whose network peers with AS 1). Textual findings are real leaks.
  std::size_t textual = 0, numeric = 0;
  for (const auto& finding : findings) {
    if (finding.kind == core::LeakFinding::Kind::kHashedWord) {
      ++textual;
    } else {
      ++numeric;
    }
  }
  std::cout << "\nleak findings: " << textual << " textual, " << numeric
            << " numeric (operator triage; see Section 6.1)\n";
  for (std::size_t i = 0; i < findings.size() && i < 5; ++i) {
    std::cout << "  [" << findings[i].matched << "] " << findings[i].line
              << "\n";
  }

  return validation.AllPassed() && textual == 0 ? 0 : 1;
}
