// End-to-end integration tests: generate -> anonymize -> validate -> attack.
//
// These are the paper's Section 5 and Section 6 procedures run as a test,
// parameterized over seeds, sizes and profiles so that every combination
// of topology shape, dialect mix, policy features and compartmentalization
// goes through the full pipeline.
#include <gtest/gtest.h>

#include "analysis/compartment.h"
#include "analysis/fingerprint.h"
#include "analysis/validate.h"
#include "core/anonymizer.h"
#include "core/leak_detector.h"
#include "gen/config_writer.h"
#include "gen/network_gen.h"

namespace confanon {
namespace {

struct EndToEndCase {
  std::uint64_t seed;
  int routers;
  gen::NetworkProfile profile;
  asn::RewriteForm form;
};

void PrintTo(const EndToEndCase& c, std::ostream* os) {
  *os << "seed" << c.seed << "_r" << c.routers << "_"
      << (c.profile == gen::NetworkProfile::kBackbone ? "backbone"
                                                      : "enterprise")
      << (c.form == asn::RewriteForm::kAlternation ? "_alt" : "_min");
}

class EndToEnd : public ::testing::TestWithParam<EndToEndCase> {
 protected:
  void SetUp() override {
    gen::GeneratorParams params;
    params.seed = GetParam().seed;
    params.router_count = GetParam().routers;
    params.profile = GetParam().profile;
    // Force the interesting regex features on for half the cases so they
    // are exercised deterministically.
    if (GetParam().seed % 2 == 0) {
      params.p_public_range_regex = 1.0;
      params.p_alternation_regex = 1.0;
      params.p_community_regex = 1.0;
    }
    network_ = gen::GenerateNetwork(params, static_cast<int>(params.seed));
    pre_ = gen::WriteNetworkConfigs(network_);

    core::AnonymizerOptions options;
    options.salt = "e2e-salt-" + std::to_string(GetParam().seed);
    options.regex_form = GetParam().form;
    anonymizer_ = std::make_unique<core::Anonymizer>(std::move(options));
    post_ = anonymizer_->AnonymizeNetwork(pre_);
  }

  gen::NetworkSpec network_;
  std::vector<config::ConfigFile> pre_;
  std::vector<config::ConfigFile> post_;
  std::unique_ptr<core::Anonymizer> anonymizer_;
};

TEST_P(EndToEnd, BothValidationSuitesPass) {
  const analysis::ValidationResult result =
      analysis::ValidateNetwork(pre_, post_, *anonymizer_);
  EXPECT_TRUE(result.characteristics_match)
      << result.characteristics_diffs.size() << " diffs, first: "
      << (result.characteristics_diffs.empty()
              ? ""
              : result.characteristics_diffs[0]);
  EXPECT_TRUE(result.design_match)
      << (result.design_diffs.empty() ? "" : result.design_diffs[0]);
  EXPECT_TRUE(result.structural_match)
      << (result.structural_diffs.empty() ? "" : result.structural_diffs[0]);
}

TEST_P(EndToEnd, NoLeaksSurvive) {
  const auto findings =
      core::LeakDetector::Scan(post_, anonymizer_->leak_record());
  // Pure-number false positives (the Genuity AS-1 effect) are possible in
  // principle; assert that no *textual* identifier survives and that any
  // numeric finding is indeed a different use of the number.
  for (const auto& finding : findings) {
    EXPECT_NE(finding.kind, core::LeakFinding::Kind::kHashedWord)
        << finding.matched << " in: " << finding.line;
    EXPECT_NE(finding.kind, core::LeakFinding::Kind::kAddress)
        << finding.matched << " in: " << finding.line;
  }
}

TEST_P(EndToEnd, CompanyNameNowhereInOutput) {
  for (const auto& file : post_) {
    EXPECT_EQ(file.ToText().find(network_.name), std::string::npos)
        << file.name();
  }
}

TEST_P(EndToEnd, FingerprintsPreserved) {
  // Section 6.2/6.3: the attack surface — fingerprints are identical
  // before and after anonymization.
  EXPECT_TRUE(analysis::SubnetSizeFingerprint(pre_) ==
              analysis::SubnetSizeFingerprint(post_));
  EXPECT_TRUE(analysis::PeeringStructureFingerprint(pre_) ==
              analysis::PeeringStructureFingerprint(post_));
}

TEST_P(EndToEnd, CompartmentalizationVerdictSurvives) {
  EXPECT_EQ(analysis::DetectCompartmentalization(pre_),
            analysis::DetectCompartmentalization(post_));
}

TEST_P(EndToEnd, DeterministicReanonymization) {
  core::AnonymizerOptions options;
  options.salt = "e2e-salt-" + std::to_string(GetParam().seed);
  options.regex_form = GetParam().form;
  core::Anonymizer again{std::move(options)};
  const auto post2 = again.AnonymizeNetwork(pre_);
  ASSERT_EQ(post2.size(), post_.size());
  for (std::size_t i = 0; i < post_.size(); ++i) {
    EXPECT_EQ(post2[i].ToText(), post_[i].ToText());
  }
}

TEST(EndToEndKeepComments, ValidationPassesWithCommentsKept) {
  // With strip_comments off, free text survives as hashed words; the
  // structural validation must be unaffected (the extractors never read
  // comment payloads).
  gen::GeneratorParams params;
  params.seed = 404;
  params.router_count = 14;
  const auto network = gen::GenerateNetwork(params, 0);
  const auto pre = gen::WriteNetworkConfigs(network);
  core::AnonymizerOptions options;
  options.salt = "keep-comments";
  options.strip_comments = false;
  core::Anonymizer anonymizer(std::move(options));
  const auto post = anonymizer.AnonymizeNetwork(pre);
  const analysis::ValidationResult result =
      analysis::ValidateNetwork(pre, post, anonymizer);
  EXPECT_TRUE(result.design_match)
      << (result.design_diffs.empty() ? "" : result.design_diffs[0]);
  EXPECT_TRUE(result.structural_match);
  // The company name still must not survive (its words are hashed).
  for (const auto& file : post) {
    EXPECT_EQ(file.ToText().find(network.name), std::string::npos);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Pipelines, EndToEnd,
    ::testing::Values(
        EndToEndCase{1, 10, gen::NetworkProfile::kBackbone,
                     asn::RewriteForm::kAlternation},
        EndToEndCase{2, 18, gen::NetworkProfile::kBackbone,
                     asn::RewriteForm::kAlternation},
        EndToEndCase{3, 18, gen::NetworkProfile::kEnterprise,
                     asn::RewriteForm::kAlternation},
        EndToEndCase{4, 26, gen::NetworkProfile::kBackbone,
                     asn::RewriteForm::kMinimizedDfa},
        EndToEndCase{5, 12, gen::NetworkProfile::kEnterprise,
                     asn::RewriteForm::kMinimizedDfa},
        EndToEndCase{6, 34, gen::NetworkProfile::kBackbone,
                     asn::RewriteForm::kAlternation},
        EndToEndCase{7, 8, gen::NetworkProfile::kEnterprise,
                     asn::RewriteForm::kAlternation},
        EndToEndCase{8, 22, gen::NetworkProfile::kBackbone,
                     asn::RewriteForm::kMinimizedDfa}));

}  // namespace
}  // namespace confanon
