// Ingest/egress edge cases over util/io.{h,cpp} and the buffer-backed
// ConfigFile splitter: CRLF, missing trailing newlines, empty files,
// lone carriage returns, embedded NULs, mmap-vs-read equality, and the
// BufferedWriter flush/accounting contract.
#include <cstddef>
#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "config/document.h"
#include "util/io.h"

namespace confanon {
namespace {

std::filesystem::path WriteTemp(const std::string& name,
                                std::string_view bytes) {
  const std::filesystem::path path =
      std::filesystem::path(::testing::TempDir()) / name;
  util::BufferedWriter writer;
  std::string error;
  EXPECT_TRUE(writer.Open(path.string(), &error)) << error;
  writer.Append(bytes);
  EXPECT_TRUE(writer.Close()) << writer.error();
  return path;
}

std::vector<std::string> Lines(const config::ConfigFile& file) {
  return std::vector<std::string>(file.lines().begin(), file.lines().end());
}

TEST(ReadFileFully, ReadsExactBytes) {
  const auto path = WriteTemp("io_exact.cfg", "hostname r1\n!\nend\n");
  std::uint64_t read_ns = 0;
  std::string error;
  const auto text = util::ReadFileFully(path.string(), &error, &read_ns);
  ASSERT_TRUE(text.has_value()) << error;
  EXPECT_EQ(*text, "hostname r1\n!\nend\n");
  EXPECT_GT(read_ns, 0u);
}

TEST(ReadFileFully, MissingFileCarriesErrno) {
  std::string error;
  const auto text = util::ReadFileFully("/nonexistent/io.cfg", &error);
  EXPECT_FALSE(text.has_value());
  EXPECT_NE(error.find("/nonexistent/io.cfg"), std::string::npos) << error;
}

TEST(MappedFile, EmptyFileMapsToEmptyView) {
  const auto path = WriteTemp("io_empty.cfg", "");
  std::string error;
  const auto mapped = util::MappedFile::Map(path.string(), &error);
  ASSERT_TRUE(mapped.has_value()) << error;
  EXPECT_TRUE(mapped->view().empty());
}

TEST(MappedFile, RejectsNonRegularFile) {
  std::string error;
  EXPECT_FALSE(util::MappedFile::Map("/dev/null", &error).has_value());
}

TEST(ReadFileContents, NonRegularFileFallsBackToRead) {
  std::string error;
  const auto contents = util::ReadFileContents("/dev/null", &error);
  ASSERT_TRUE(contents.has_value()) << error;
  EXPECT_FALSE(contents->mapped);
  EXPECT_TRUE(contents->view.empty());
}

TEST(ReadFileContents, MmapAndReadAgreeOnAwkwardBytes) {
  // CRLF line, embedded NUL, no trailing newline.
  const std::string bytes = std::string("line one\r\nnul ") +
                            std::string(1, '\0') + " byte\nlast";
  const auto path = WriteTemp("io_awkward.cfg", bytes);

  std::string error;
  const auto mapped =
      util::ReadFileContents(path.string(), &error, /*mmap_threshold=*/0);
  ASSERT_TRUE(mapped.has_value()) << error;
  EXPECT_TRUE(mapped->mapped);

  const auto copied = util::ReadFileContents(path.string(), &error,
                                             /*mmap_threshold=*/SIZE_MAX);
  ASSERT_TRUE(copied.has_value()) << error;
  EXPECT_FALSE(copied->mapped);

  EXPECT_EQ(mapped->view, std::string_view(bytes));
  EXPECT_EQ(mapped->view, copied->view);

  // Both backings split to the same lines through ConfigFile.
  const auto from_map = config::ConfigFile::FromBacking(
      "awkward.cfg", mapped->view, mapped->backing);
  const auto from_read = config::ConfigFile::FromBacking(
      "awkward.cfg", copied->view, copied->backing);
  EXPECT_EQ(Lines(from_map), Lines(from_read));
}

TEST(ConfigFileSplit, StripsOneCarriageReturnPerCrlfLine) {
  const auto file =
      config::ConfigFile::FromText("crlf.cfg", "a\r\nb\r\nc\r\r\n");
  EXPECT_EQ(Lines(file), (std::vector<std::string>{"a", "b", "c\r"}));
}

TEST(ConfigFileSplit, MissingTrailingNewlineKeepsLastLine) {
  const auto file = config::ConfigFile::FromText("tail.cfg", "a\nb");
  EXPECT_EQ(Lines(file), (std::vector<std::string>{"a", "b"}));
}

TEST(ConfigFileSplit, EmptyInputHasNoLines) {
  const auto file = config::ConfigFile::FromText("empty.cfg", "");
  EXPECT_TRUE(file.lines().empty());
  EXPECT_EQ(file.ToText(), "");
  EXPECT_EQ(file.TextBytes(), 0u);
}

TEST(ConfigFileSplit, LoneCarriageReturnBecomesEmptyLine) {
  const auto file = config::ConfigFile::FromText("cr.cfg", "\r");
  EXPECT_EQ(Lines(file), (std::vector<std::string>{""}));
}

TEST(ConfigFileSplit, EmbeddedNulSurvives) {
  const std::string text = std::string("a") + std::string(1, '\0') + "b\n";
  const auto file = config::ConfigFile::FromText("nul.cfg", text);
  ASSERT_EQ(file.lines().size(), 1u);
  EXPECT_EQ(file.lines()[0],
            std::string_view(std::string("a") + std::string(1, '\0') + "b"));
  EXPECT_EQ(file.ToText(), text);
}

TEST(ConfigFileSplit, NewlineTerminatedTextRoundTrips) {
  const std::string text = "interface Serial0\n ip address 10.0.0.1\n!\n";
  const auto file = config::ConfigFile::FromText("rt.cfg", text);
  EXPECT_EQ(file.ToText(), text);
  EXPECT_EQ(file.TextBytes(), text.size());
}

TEST(ConfigFile, CopyOnWriteLeavesOriginalIntact) {
  const auto original = config::ConfigFile::FromText("cow.cfg", "a\nb\n");
  config::ConfigFile copy = original;
  copy.mutable_lines()[0] = "changed";
  EXPECT_EQ(Lines(original), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(Lines(copy), (std::vector<std::string>{"changed", "b"}));
  EXPECT_EQ(copy.ToText(), "changed\nb\n");
}

TEST(BufferedWriter, FlushesAcrossThresholdAndAccounts) {
  const std::filesystem::path path =
      std::filesystem::path(::testing::TempDir()) / "io_writer.cfg";
  util::BufferedWriter writer(/*flush_bytes=*/4);
  std::string error;
  ASSERT_TRUE(writer.Open(path.string(), &error)) << error;
  writer.Append("hostname ");
  writer.Append('r');
  writer.Append("1\n");
  ASSERT_TRUE(writer.Close()) << writer.error();
  EXPECT_EQ(writer.bytes_written(), 12u);
  EXPECT_GT(writer.write_ns(), 0u);

  const auto text = util::ReadFileFully(path.string(), &error);
  ASSERT_TRUE(text.has_value()) << error;
  EXPECT_EQ(*text, "hostname r1\n");

  // The writer (and its accounting) is reusable across Open calls.
  ASSERT_TRUE(writer.Open(path.string(), &error)) << error;
  writer.Append("x\n");
  ASSERT_TRUE(writer.Close()) << writer.error();
  EXPECT_EQ(writer.bytes_written(), 14u);
}

TEST(BufferedWriter, OpenFailureCarriesErrno) {
  util::BufferedWriter writer;
  std::string error;
  EXPECT_FALSE(writer.Open("/nonexistent-dir/out.cfg", &error));
  EXPECT_NE(error.find("/nonexistent-dir/out.cfg"), std::string::npos)
      << error;
}

TEST(BufferedWriter, AppendToWritesConfigVerbatim) {
  const auto file =
      config::ConfigFile::FromText("verbatim.cfg", "a\nb b\n!\n");
  const std::filesystem::path path =
      std::filesystem::path(::testing::TempDir()) / "io_verbatim.cfg";
  util::BufferedWriter writer;
  std::string error;
  ASSERT_TRUE(writer.Open(path.string(), &error)) << error;
  file.AppendTo(writer);
  ASSERT_TRUE(writer.Close()) << writer.error();
  const auto text = util::ReadFileFully(path.string(), &error);
  ASSERT_TRUE(text.has_value()) << error;
  EXPECT_EQ(*text, "a\nb b\n!\n");
}

}  // namespace
}  // namespace confanon
