#include "core/anonymizer.h"

#include <gtest/gtest.h>

#include <set>

#include "core/leak_detector.h"
#include "core/string_hasher.h"
#include "net/prefix.h"
#include "util/strings.h"

namespace confanon::core {
namespace {

config::ConfigFile File(std::string_view text) {
  return config::ConfigFile::FromText("router", text);
}

Anonymizer MakeAnonymizer(std::string salt = "test-salt") {
  AnonymizerOptions options;
  options.salt = std::move(salt);
  return Anonymizer(std::move(options));
}

std::string AnonymizeText(std::string_view text,
                          std::string salt = "test-salt") {
  Anonymizer anonymizer = MakeAnonymizer(std::move(salt));
  return anonymizer.AnonymizeNetwork({File(text)}).front().ToText();
}

// --- string hasher ---

TEST(StringHasher, ReferentialIntegrity) {
  StringHasher hasher("salt");
  const std::string a = hasher.Hash("UUNET-import");
  const std::string b = hasher.Hash("UUNET-import");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, hasher.Hash("UUNET-export"));
  EXPECT_EQ(hasher.DistinctCount(), 2u);
}

TEST(StringHasher, TokenShape) {
  StringHasher hasher("salt");
  const std::string token = hasher.Hash("anything");
  EXPECT_EQ(token.size(), 11u);
  EXPECT_EQ(token[0], 'h');
}

TEST(StringHasher, SaltChangesTokens) {
  StringHasher a("salt-a"), b("salt-b");
  EXPECT_NE(a.Hash("name"), b.Hash("name"));
}

TEST(StringHasher, OriginalsRecorded) {
  StringHasher hasher("salt");
  hasher.Hash("one");
  hasher.Hash("two");
  const auto originals = hasher.Originals();
  EXPECT_EQ(std::set<std::string>(originals.begin(), originals.end()),
            (std::set<std::string>{"one", "two"}));
}

// --- comment rules ---

TEST(Anonymizer, StripsBangCommentText) {
  const std::string out = AnonymizeText("! secret note about acme corp\n!\n");
  EXPECT_EQ(out, "!\n!\n");
}

TEST(Anonymizer, StripsDescriptionPayload) {
  const std::string out =
      AnonymizeText("interface Ethernet0\n description Foo Corp LAX office\n");
  EXPECT_NE(out.find("description"), std::string::npos);
  EXPECT_EQ(out.find("Foo"), std::string::npos);
  EXPECT_EQ(out.find("LAX"), std::string::npos);
}

TEST(Anonymizer, StripsRemarkPayload) {
  const std::string out =
      AnonymizeText("access-list 10 remark customers of acme\n");
  EXPECT_EQ(out.find("acme"), std::string::npos);
  EXPECT_NE(out.find("remark"), std::string::npos);
  EXPECT_NE(out.find("access-list 10"), std::string::npos);
}

TEST(Anonymizer, StripsBannerBlock) {
  const std::string out = AnonymizeText(
      "banner motd ^C\nWelcome to AcmeNet\n^C\ninterface Ethernet0\n");
  EXPECT_EQ(out.find("Acme"), std::string::npos);
  EXPECT_EQ(out.find("banner"), std::string::npos);
  EXPECT_NE(out.find("interface Ethernet0"), std::string::npos);
}

TEST(Anonymizer, PassListedWordsInCommentsStillStripped) {
  // "global crossing" is composed of pass-listed words but must go
  // (Section 4.2).
  const std::string out = AnonymizeText(
      "interface Serial0\n description circuit leased from global crossing\n");
  EXPECT_EQ(out.find("global"), std::string::npos);
  EXPECT_EQ(out.find("crossing"), std::string::npos);
}

TEST(Anonymizer, CommentStrippingCanBeDisabled) {
  AnonymizerOptions options;
  options.salt = "s";
  options.strip_comments = false;
  Anonymizer anonymizer{std::move(options)};
  const auto out = anonymizer.AnonymizeNetwork(
      {File("interface Ethernet0\n description link via globex hq\n")});
  // Free text survives as hashed words rather than disappearing.
  EXPECT_EQ(out.front().ToText().find("globex"), std::string::npos);
  EXPECT_NE(out.front().ToText().find("description"), std::string::npos);
}

// --- pass-list hashing ---

TEST(Anonymizer, KeywordsSurvive) {
  const std::string out =
      AnonymizeText("interface Ethernet0\n ip address 10.1.1.1 255.255.255.0\n");
  EXPECT_NE(out.find("interface Ethernet0"), std::string::npos);
  EXPECT_NE(out.find("ip address"), std::string::npos);
}

TEST(Anonymizer, InterfaceRemainderSurvives) {
  // Ethernet0/0 -> "ethernet" passes, "0/0" untouched (the paper's
  // motivating example for segmentation).
  const std::string out = AnonymizeText("interface FastEthernet0/0\n");
  EXPECT_NE(out.find("FastEthernet0/0"), std::string::npos);
}

TEST(Anonymizer, UnknownNamesHashedConsistently) {
  const std::string out = AnonymizeText(
      "route-map ACME-import permit 10\n"
      "router bgp 65000\n"
      " neighbor 10.0.0.2 route-map ACME-import in\n");
  EXPECT_EQ(out.find("ACME"), std::string::npos);
  // The two references must agree: find the hash token on the route-map
  // line and demand it also appears on the neighbor line.
  std::string token;
  for (const auto word : util::SplitWords(out)) {
    if (word.size() == 11 && word[0] == 'h') {
      token = std::string(word);
      break;
    }
  }
  ASSERT_FALSE(token.empty());
  EXPECT_NE(out.find("route-map " + token + " permit"), std::string::npos);
  EXPECT_NE(out.find("route-map " + token + " in"), std::string::npos);
}

TEST(Anonymizer, HostnameAlwaysHashed) {
  const std::string out = AnonymizeText("hostname cr1.lax.foo.com\n");
  EXPECT_EQ(out.find("foo"), std::string::npos);
  EXPECT_EQ(out.find("lax"), std::string::npos);
  EXPECT_NE(out.find("hostname h"), std::string::npos);
}

TEST(Anonymizer, DeterministicForSalt) {
  const std::string text =
      "hostname r1.acme.com\nrouter bgp 701\n neighbor 4.4.4.4 remote-as 1239\n";
  EXPECT_EQ(AnonymizeText(text, "s1"), AnonymizeText(text, "s1"));
  EXPECT_NE(AnonymizeText(text, "s1"), AnonymizeText(text, "s2"));
}

// --- IP rules ---

TEST(Anonymizer, NetmasksUntouchedAddressesMapped) {
  const std::string out = AnonymizeText(
      "interface Ethernet0\n ip address 12.34.56.78 255.255.255.0\n");
  EXPECT_NE(out.find("255.255.255.0"), std::string::npos);
  EXPECT_EQ(out.find("12.34.56.78"), std::string::npos);
}

TEST(Anonymizer, WildcardMasksUntouched) {
  const std::string out =
      AnonymizeText("access-list 10 permit ip 12.34.0.0 0.0.255.255\n");
  EXPECT_NE(out.find("0.0.255.255"), std::string::npos);
  EXPECT_EQ(out.find("12.34.0.0"), std::string::npos);
}

TEST(Anonymizer, CidrPrefixMapped) {
  const std::string out = AnonymizeText("ip route 12.34.0.0/16 Null0\n");
  EXPECT_EQ(out.find("12.34.0.0/16"), std::string::npos);
  EXPECT_NE(out.find("/16"), std::string::npos);
}

TEST(Anonymizer, SubnetContainsPreserved) {
  Anonymizer anonymizer = MakeAnonymizer();
  const auto out = anonymizer.AnonymizeNetwork({File(
      "interface Ethernet0\n ip address 1.1.1.10 255.255.255.0\n"
      "router rip\n network 1.0.0.0\n")});
  // Re-extract the two addresses and check containment survived.
  std::optional<net::Ipv4Address> iface, network;
  for (const std::string_view line : out.front().lines()) {
    const auto words = util::SplitWords(line);
    for (std::size_t i = 0; i + 1 < words.size(); ++i) {
      if (words[i] == "address") iface = net::Ipv4Address::Parse(words[i + 1]);
      if (words[i] == "network") {
        network = net::Ipv4Address::Parse(words[i + 1]);
      }
    }
  }
  ASSERT_TRUE(iface.has_value());
  ASSERT_TRUE(network.has_value());
  EXPECT_TRUE(net::Prefix(*network, 8).Contains(*iface));
  EXPECT_EQ(net::TrailingZeroBits(*network), 24);  // still classful A base
}

// --- ASN rules ---

TEST(Anonymizer, RouterBgpAsnMapped) {
  Anonymizer anonymizer = MakeAnonymizer();
  const auto out =
      anonymizer.AnonymizeNetwork({File("router bgp 1111\n")});
  const std::string expected =
      "router bgp " + std::to_string(anonymizer.asn_map().Map(1111)) + "\n";
  EXPECT_EQ(out.front().ToText(), expected);
}

TEST(Anonymizer, PrivateBgpAsnUntouched) {
  EXPECT_EQ(AnonymizeText("router bgp 65001\n"), "router bgp 65001\n");
}

TEST(Anonymizer, RemoteAsConsistentWithRouterBgp) {
  Anonymizer anonymizer = MakeAnonymizer();
  const auto out = anonymizer.AnonymizeNetwork({File(
      "router bgp 701\n neighbor 9.9.9.9 remote-as 701\n")});
  const std::string mapped = std::to_string(anonymizer.asn_map().Map(701));
  const std::string text = out.front().ToText();
  EXPECT_NE(text.find("router bgp " + mapped), std::string::npos);
  EXPECT_NE(text.find("remote-as " + mapped), std::string::npos);
}

TEST(Anonymizer, ConfederationPeersAllMapped) {
  Anonymizer anonymizer = MakeAnonymizer();
  const auto out = anonymizer.AnonymizeNetwork({File(
      "router bgp 100\n bgp confederation identifier 200\n"
      " bgp confederation peers 300 400 65100\n")});
  const std::string text = out.front().ToText();
  EXPECT_NE(text.find(std::to_string(anonymizer.asn_map().Map(200))),
            std::string::npos);
  EXPECT_NE(text.find(std::to_string(anonymizer.asn_map().Map(300))),
            std::string::npos);
  EXPECT_NE(text.find("65100"), std::string::npos);  // private untouched
}

TEST(Anonymizer, AsPathPrependMapped) {
  Anonymizer anonymizer = MakeAnonymizer();
  const auto out = anonymizer.AnonymizeNetwork({File(
      "route-map OUT permit 10\n set as-path prepend 701 701\n")});
  const std::string mapped = std::to_string(anonymizer.asn_map().Map(701));
  EXPECT_NE(out.front().ToText().find("prepend " + mapped + " " + mapped),
            std::string::npos);
}

TEST(Anonymizer, AsPathRegexRewritten) {
  Anonymizer anonymizer = MakeAnonymizer();
  const auto out = anonymizer.AnonymizeNetwork({File(
      "ip as-path access-list 50 permit (_1239_|_70[2-5]_)\n")});
  const std::string text = out.front().ToText();
  EXPECT_EQ(text.find("1239"), std::string::npos);
  EXPECT_EQ(text.find("70[2-5]"), std::string::npos);
  // All five mapped ASNs appear.
  for (std::uint32_t asn : {1239u, 702u, 703u, 704u, 705u}) {
    EXPECT_NE(text.find(std::to_string(anonymizer.asn_map().Map(asn))),
              std::string::npos);
  }
}

TEST(Anonymizer, PrivateOnlyAsPathRegexUntouched) {
  const std::string out =
      AnonymizeText("ip as-path access-list 10 permit _6451[2-5]_\n");
  EXPECT_NE(out.find("_6451[2-5]_"), std::string::npos);
}

TEST(Anonymizer, SetCommunityLiteralMapped) {
  Anonymizer anonymizer = MakeAnonymizer();
  const auto out = anonymizer.AnonymizeNetwork({File(
      "route-map X permit 10\n set community 701:7100 additive\n")});
  const std::string text = out.front().ToText();
  EXPECT_EQ(text.find("701:7100"), std::string::npos);
  EXPECT_NE(text.find("additive"), std::string::npos);
  const std::string expected =
      std::to_string(anonymizer.asn_map().Map(701)) + ":" +
      std::to_string(anonymizer.community_values().Map(7100));
  EXPECT_NE(text.find(expected), std::string::npos);
}

TEST(Anonymizer, CommunityListLiteralsAndKeywords) {
  const std::string out = AnonymizeText(
      "ip community-list 5 permit 701:100 no-export\n");
  EXPECT_EQ(out.find("701:100"), std::string::npos);
  EXPECT_NE(out.find("no-export"), std::string::npos);
}

TEST(Anonymizer, CommunityRegexRewritten) {
  const std::string out =
      AnonymizeText("ip community-list 100 permit 701:7[1-5]..\n");
  EXPECT_EQ(out.find("701:"), std::string::npos);
  EXPECT_NE(out.find(":"), std::string::npos);
}

TEST(Anonymizer, MatchClauseNumbersUntouched) {
  const std::string out = AnonymizeText(
      "route-map X deny 10\n match as-path 50\n match community 100\n");
  EXPECT_NE(out.find("match as-path 50"), std::string::npos);
  EXPECT_NE(out.find("match community 100"), std::string::npos);
}

// --- misc rules ---

TEST(Anonymizer, SnmpCommunityHashed) {
  const std::string out = AnonymizeText("snmp-server community s3cr3t RO\n");
  EXPECT_EQ(out.find("s3cr3t"), std::string::npos);
  EXPECT_NE(out.find("RO"), std::string::npos);
}

TEST(Anonymizer, SnmpLocationStripped) {
  const std::string out =
      AnonymizeText("snmp-server location acme hq floor 3\n");
  EXPECT_EQ(out.find("acme"), std::string::npos);
  EXPECT_EQ(out.find("floor"), std::string::npos);
}

TEST(Anonymizer, SecretsHashed) {
  const std::string out = AnonymizeText(
      "enable secret 5 $1$abcd$efgh\n"
      "username admin password 7 0822455D0A16\n"
      "router bgp 65000\n neighbor 10.0.0.1 password sup3rs3cret\n");
  EXPECT_EQ(out.find("$1$abcd$efgh"), std::string::npos);
  EXPECT_EQ(out.find("0822455D0A16"), std::string::npos);
  EXPECT_EQ(out.find("sup3rs3cret"), std::string::npos);
}

TEST(Anonymizer, DialerStringPseudonymized) {
  const std::string out = AnonymizeText("dialer string 14085551234\n");
  EXPECT_EQ(out.find("14085551234"), std::string::npos);
  // Replacement is still an 11-digit dial string.
  const auto words = util::SplitWords(util::Trim(out));
  ASSERT_EQ(words.size(), 3u);
  EXPECT_EQ(words[2].size(), 11u);
  EXPECT_TRUE(util::IsAllDigits(words[2]));
}

TEST(Anonymizer, DomainNameHashed) {
  const std::string out = AnonymizeText("ip domain-name foocorp.com\n");
  EXPECT_EQ(out.find("foocorp"), std::string::npos);
}

// --- whole-network behaviours ---

TEST(Anonymizer, SpacingPreserved) {
  const std::string out =
      AnonymizeText("router bgp 65000\n neighbor 10.0.0.9 remote-as  65000\n");
  // The pre-11.x double-space artifact survives (space handling must not
  // normalize lines).
  EXPECT_NE(out.find("remote-as  65000"), std::string::npos);
}

TEST(Anonymizer, ConsistentAcrossFilesOfOneNetwork) {
  Anonymizer anonymizer = MakeAnonymizer();
  const auto out = anonymizer.AnonymizeNetwork(
      {config::ConfigFile::FromText("r1", "ip route 12.0.0.0 255.0.0.0 4.4.4.4\n"),
       config::ConfigFile::FromText("r2", "ip route 12.0.0.0 255.0.0.0 4.4.4.4\n")});
  EXPECT_EQ(out[0].ToText(), out[1].ToText());
}

TEST(Anonymizer, DisabledRuleLeaksAndDetectorCatchesIt) {
  AnonymizerOptions options;
  options.salt = "s";
  options.disabled_rules.insert(rules::kRouterBgp);
  Anonymizer crippled{std::move(options)};
  const auto out = crippled.AnonymizeNetwork({File(
      "router bgp 1111\n neighbor 5.5.5.5 remote-as 1111\n")});
  // The remote-as rule still fired and recorded 1111; the router bgp line
  // kept it. The Section 6.1 grep must flag the survivor.
  const auto findings = LeakDetector::Scan(out, crippled.leak_record());
  ASSERT_FALSE(findings.empty());
  EXPECT_EQ(findings[0].matched, "1111");
}

TEST(Anonymizer, NoLeaksWithFullRuleSet) {
  Anonymizer anonymizer = MakeAnonymizer();
  const auto out = anonymizer.AnonymizeNetwork({File(
      "hostname cr1.acme.com\n"
      "interface Serial0\n description to sprintlink\n"
      " ip address 12.0.0.1 255.255.255.252\n"
      "router bgp 1111\n neighbor 12.0.0.2 remote-as 1239\n"
      "ip as-path access-list 5 permit _701_\n")});
  EXPECT_TRUE(LeakDetector::Scan(out, anonymizer.leak_record()).empty());
}

TEST(Anonymizer, ReportCountsAreCoherent) {
  Anonymizer anonymizer = MakeAnonymizer();
  anonymizer.AnonymizeNetwork({File(
      "hostname r1.acme.com\n"
      "! comment\n"
      "interface Ethernet0\n ip address 12.1.1.1 255.255.255.0\n")});
  const AnonymizationReport& report = anonymizer.report();
  EXPECT_EQ(report.total_lines, 4u);
  EXPECT_GE(report.words_hashed, 1u);
  EXPECT_EQ(report.addresses_mapped, 1u);
  EXPECT_EQ(report.addresses_special, 1u);
  EXPECT_GT(report.comment_words_removed, 0u);
}

// --- leak detector specifics ---

TEST(LeakDetector, WordBoundaryMatching) {
  LeakRecord record;
  record.public_asns.insert("701");
  const config::ConfigFile clean =
      config::ConfigFile::FromText("r", "router bgp 7701\nip route 1.7.0.1\n");
  EXPECT_TRUE(LeakDetector::Scan({clean}, record).empty());
  const config::ConfigFile dirty =
      config::ConfigFile::FromText("r", "set community 701:100\n");
  EXPECT_EQ(LeakDetector::Scan({dirty}, record).size(), 1u);
}

TEST(LeakDetector, AddressMatchingRespectsDots) {
  LeakRecord record;
  record.addresses.insert("1.2.3.4");
  const config::ConfigFile clean =
      config::ConfigFile::FromText("r", "ip route 11.2.3.40 255.0.0.0\n");
  EXPECT_TRUE(LeakDetector::Scan({clean}, record).empty());
  const config::ConfigFile dirty =
      config::ConfigFile::FromText("r", "ping 1.2.3.4 repeat 5\n");
  EXPECT_EQ(LeakDetector::Scan({dirty}, record).size(), 1u);
}

TEST(LeakDetector, CaseInsensitiveWordMatch) {
  LeakRecord record;
  record.hashed_words.insert("AcmeCorp");
  const config::ConfigFile dirty =
      config::ConfigFile::FromText("r", "description link for ACMECORP\n");
  EXPECT_EQ(LeakDetector::Scan({dirty}, record).size(), 1u);
}

TEST(LeakDetector, GenuityAs1FalsePositives) {
  // The paper's caveat: AS 1 (Genuity) matches all over the place. The
  // detector is expected to over-report here — that is what the human
  // iteration loop is for.
  LeakRecord record;
  record.public_asns.insert("1");
  const config::ConfigFile file = config::ConfigFile::FromText(
      "r", "router ospf 1\nroute-map X permit 1\n");
  EXPECT_EQ(LeakDetector::Scan({file}, record).size(), 2u);
}

}  // namespace
}  // namespace confanon::core
