// Metamorphic properties of the anonymizer.
//
// Instead of asserting exact outputs, these tests assert relations
// BETWEEN runs — the properties that gate the batched SHA-1 hot path:
//
//  1. Determinism: the same salt gives byte-identical output at any
//     thread count (the batch kernel must not let worker interleaving
//     or lane packing leak into the bytes).
//  2. Salt independence of structure: two different salts give outputs
//     that are pair-isomorphic under the map-free audit — renames
//     change, the reference structure does not.
//  3. Pass-list fixed points: words on the pass list survive bit-exact;
//     hashing (batched or not) never touches them.
//  4. Leak closure under iteration: re-anonymizing anonymized output
//     introduces no new leak findings — the fixed point of the paper's
//     Section 6.1 grep-back loop.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "audit/audit.h"
#include "config/document.h"
#include "core/anonymizer.h"
#include "core/leak_detector.h"
#include "gen/config_writer.h"
#include "gen/network_gen.h"
#include "junos/anonymizer.h"
#include "junos/writer.h"
#include "passlist/passlist.h"
#include "pipeline/pipeline.h"

namespace confanon {
namespace {

std::vector<config::ConfigFile> IosCorpus(std::uint64_t seed, int routers) {
  gen::GeneratorParams params;
  params.seed = seed;
  params.router_count = routers;
  params.p_public_range_regex = 1.0;
  params.p_alternation_regex = 1.0;
  params.p_community_regex = 1.0;
  return gen::WriteNetworkConfigs(
      gen::GenerateNetwork(params, static_cast<int>(seed)));
}

std::vector<config::ConfigFile> JunosCorpus(std::uint64_t seed, int routers) {
  gen::GeneratorParams params;
  params.seed = seed;
  params.router_count = routers;
  return junos::WriteJunosNetworkConfigs(
      gen::GenerateNetwork(params, static_cast<int>(seed)));
}

std::vector<config::ConfigFile> MixedCorpus(std::uint64_t seed) {
  const auto ios = IosCorpus(seed, 8);
  const auto junos = JunosCorpus(seed + 1, 8);
  std::vector<config::ConfigFile> mixed;
  for (std::size_t i = 0; i < std::max(ios.size(), junos.size()); ++i) {
    if (i < ios.size()) mixed.push_back(ios[i]);
    if (i < junos.size()) mixed.push_back(junos[i]);
  }
  return mixed;
}

std::vector<config::ConfigFile> RunPipeline(
    const std::vector<config::ConfigFile>& files, const std::string& salt,
    int threads) {
  pipeline::PipelineOptions options;
  options.base.salt = salt;
  options.threads = threads;
  pipeline::CorpusPipeline pipeline(std::move(options));
  return pipeline.AnonymizeCorpus(files);
}

// --- 1. Same salt, any thread count: byte-identical ---------------------

TEST(Metamorphic, SameSaltIsByteIdenticalAcrossThreadCounts) {
  const auto files = MixedCorpus(101);
  const auto baseline = RunPipeline(files, "meta-salt", 1);
  for (const int threads : {4, 8}) {
    const auto parallel = RunPipeline(files, "meta-salt", threads);
    ASSERT_EQ(baseline.size(), parallel.size()) << "threads=" << threads;
    for (std::size_t i = 0; i < baseline.size(); ++i) {
      EXPECT_EQ(baseline[i].name(), parallel[i].name())
          << "threads=" << threads << " file " << i;
      EXPECT_EQ(baseline[i].ToText(), parallel[i].ToText())
          << "threads=" << threads << " " << baseline[i].name();
    }
  }
}

// --- 2. Two salts: outputs are pair-isomorphic --------------------------

TEST(Metamorphic, DifferentSaltsProduceIsomorphicOutputs) {
  // The salt only selects WHICH tokens replace identifiers, never the
  // structure: outputs under two salts must pair file-for-file by shape
  // and agree on every reference edge. ComparePair needs no maps, so it
  // can compare the two outputs directly.
  const auto files = MixedCorpus(102);
  const auto salt_a = RunPipeline(files, "meta-salt-a", 2);
  const auto salt_b = RunPipeline(files, "meta-salt-b", 2);

  const audit::AuditResult result = audit::ComparePair(salt_a, salt_b);
  EXPECT_FALSE(result.HasErrors()) << result.ToText();
  EXPECT_EQ(result.files_scanned, salt_a.size() + salt_b.size());
}

// --- 3. Pass-list words are bit-exact fixed points ----------------------

TEST(Metamorphic, PassListWordsAreFixedPoints) {
  // Premise: these words really are on the built-in pass list.
  const passlist::PassList pass_list = passlist::PassList::Builtin();
  for (const char* word : {"interface", "router", "bgp", "ip", "permit"}) {
    ASSERT_TRUE(pass_list.Contains(word)) << word;
  }

  const auto file = config::ConfigFile::FromText(
      "fixed.cfg",
      "interface Serial0\n"
      " ip address 10.1.2.3 255.255.255.0\n"
      "router bgp 65001\n"
      "ip prefix-list cust-list permit 10.0.0.0/8\n");

  core::AnonymizerOptions options;
  options.salt = "fixed-point-salt";
  core::Anonymizer engine(options);
  const auto post = engine.AnonymizeNetwork({file});
  ASSERT_EQ(post.size(), 1u);
  const std::string text = post[0].ToText();

  // Every pass-listed keyword survives verbatim (with its own word
  // boundaries — "router bgp" survives as a phrase).
  EXPECT_NE(text.find("interface Serial0"), std::string::npos) << text;
  EXPECT_NE(text.find("router bgp"), std::string::npos) << text;
  EXPECT_NE(text.find(" ip address "), std::string::npos) << text;
  EXPECT_NE(text.find("permit"), std::string::npos) << text;
  // ...while the non-pass-listed name was hashed away.
  EXPECT_EQ(text.find("cust-list"), std::string::npos) << text;
}

TEST(Metamorphic, JunosPassListWordsAreFixedPoints) {
  const passlist::PassList pass_list = junos::JunosPassList();
  for (const char* word : {"interfaces", "unit", "family", "inet"}) {
    ASSERT_TRUE(pass_list.Contains(word)) << word;
  }

  const auto file = config::ConfigFile::FromText(
      "fixed.conf",
      "interfaces {\n"
      "    ge-0/0/0 {\n"
      "        unit 0 {\n"
      "            family inet {\n"
      "                address 10.4.5.6/24;\n"
      "            }\n"
      "        }\n"
      "    }\n"
      "}\n");

  junos::JunosAnonymizerOptions options;
  options.salt = "fixed-point-salt";
  junos::JunosAnonymizer engine(options);
  const auto post = engine.AnonymizeNetwork({file});
  ASSERT_EQ(post.size(), 1u);
  const std::string text = post[0].ToText();
  EXPECT_NE(text.find("interfaces {"), std::string::npos) << text;
  EXPECT_NE(text.find("unit 0 {"), std::string::npos) << text;
  EXPECT_NE(text.find("family inet {"), std::string::npos) << text;
  EXPECT_EQ(text.find("10.4.5.6"), std::string::npos) << text;
}

// --- 4. Re-anonymizing output adds no new leak findings -----------------

TEST(Metamorphic, ReanonymizedOutputHasNoNewLeaks) {
  // First pass over the raw corpus; scan its output against its own leak
  // record (the Section 6.1 grep-back) as the baseline.
  const auto files = IosCorpus(103, 10);
  core::AnonymizerOptions options;
  options.salt = "leak-closure-salt";
  core::Anonymizer first(options);
  const auto once = first.AnonymizeNetwork(files);
  const auto first_findings = core::LeakDetector::Scan(once, first.leak_record());

  // Second pass over the anonymized output with a different salt: every
  // identifier the second pass replaced must be gone from its output —
  // anonymized text is a fixed point of the leak-refinement loop.
  core::AnonymizerOptions again;
  again.salt = "leak-closure-salt-2";
  core::Anonymizer second(again);
  const auto twice = second.AnonymizeNetwork(once);
  const auto second_findings =
      core::LeakDetector::Scan(twice, second.leak_record());
  EXPECT_LE(second_findings.size(), first_findings.size());
  for (const auto& finding : second_findings) {
    ADD_FAILURE() << "new leak finding after re-anonymization: "
                  << finding.file << ":" << finding.line_number << " '"
                  << finding.matched << "' in: " << finding.line;
  }
}

TEST(Metamorphic, ReanonymizedJunosOutputHasNoNewLeaks) {
  const auto files = JunosCorpus(104, 10);
  junos::JunosAnonymizerOptions options;
  options.salt = "leak-closure-salt";
  junos::JunosAnonymizer first(options);
  const auto once = first.AnonymizeNetwork(files);

  junos::JunosAnonymizerOptions again;
  again.salt = "leak-closure-salt-2";
  junos::JunosAnonymizer second(again);
  const auto twice = second.AnonymizeNetwork(once);
  const auto findings = core::LeakDetector::Scan(twice, second.leak_record());
  for (const auto& finding : findings) {
    ADD_FAILURE() << "new leak finding after re-anonymization: "
                  << finding.file << ":" << finding.line_number << " '"
                  << finding.matched << "' in: " << finding.line;
  }
}

}  // namespace
}  // namespace confanon
