// The daemon's determinism and admission-control contracts.
//
// confanond's promise (docs/DAEMON.md) is that putting HTTP, tenant
// sessions, and handler concurrency between the caller and the engines
// changes NOTHING about the bytes:
//
//  1. A tenant session fed successive single-file requests produces
//     exactly what a sequential standalone engine fed the same files in
//     order produces, and the first request on a fresh tenant matches a
//     fresh CLI-style batch run byte-for-byte.
//  2. Many tenants (the acceptance bar is >= 8) with different salts can
//     anonymize interleaved, concurrent request streams and each stream
//     is still byte-identical to its tenant's reference run.
//  3. Two tenants' outputs differ only by renaming — pair-isomorphic
//     under the map-free audit (reusing the metamorphic-suite check).
//  4. Beyond the bounded queue the server answers 429 immediately
//     instead of queueing unboundedly.
#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "audit/audit.h"
#include "config/document.h"
#include "core/anonymizer.h"
#include "core/session.h"
#include "gen/config_writer.h"
#include "gen/network_gen.h"
#include "junos/writer.h"
#include "obs/exposition.h"
#include "pipeline/pipeline.h"
#include "service/service.h"

namespace confanon {
namespace {

std::vector<config::ConfigFile> IosCorpus(std::uint64_t seed, int routers) {
  gen::GeneratorParams params;
  params.seed = seed;
  params.router_count = routers;
  return gen::WriteNetworkConfigs(
      gen::GenerateNetwork(params, static_cast<int>(seed)));
}

std::vector<config::ConfigFile> JunosCorpus(std::uint64_t seed, int routers) {
  gen::GeneratorParams params;
  params.seed = seed;
  params.router_count = routers;
  return junos::WriteJunosNetworkConfigs(
      gen::GenerateNetwork(params, static_cast<int>(seed)));
}

/// Sends `request` verbatim and returns the raw response (headers+body).
std::string RawHttp(std::uint16_t port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return {};
  }
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::write(fd, request.data() + sent, request.size() - sent);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char buffer[4096];
  ssize_t n;
  while ((n = ::read(fd, buffer, sizeof buffer)) > 0) {
    response.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string BuildPost(
    const std::string& path,
    const std::vector<std::pair<std::string, std::string>>& headers,
    const std::string& body) {
  std::string request = "POST " + path + " HTTP/1.1\r\nHost: localhost\r\n";
  for (const auto& [name, value] : headers) {
    request += name + ": " + value + "\r\n";
  }
  request += "Content-Length: " + std::to_string(body.size()) +
             "\r\nConnection: close\r\n\r\n" + body;
  return request;
}

struct ParsedResponse {
  int status = 0;
  std::string head;
  std::string body;  // de-chunked when Transfer-Encoding: chunked
};

ParsedResponse ParseResponse(const std::string& raw) {
  ParsedResponse out;
  const std::size_t head_end = raw.find("\r\n\r\n");
  if (head_end == std::string::npos) return out;
  out.head = raw.substr(0, head_end);
  out.status = std::atoi(out.head.c_str() + sizeof "HTTP/1.1 " - 1);
  std::string payload = raw.substr(head_end + 4);
  if (out.head.find("Transfer-Encoding: chunked") == std::string::npos) {
    out.body = std::move(payload);
    return out;
  }
  std::size_t pos = 0;
  for (;;) {
    const std::size_t eol = payload.find("\r\n", pos);
    if (eol == std::string::npos) break;
    const std::size_t size =
        std::strtoul(payload.substr(pos, eol - pos).c_str(), nullptr, 16);
    if (size == 0) break;
    out.body += payload.substr(eol + 2, size);
    pos = eol + 2 + size + 2;  // chunk data + trailing CRLF
  }
  return out;
}

/// The reference for one tenant: a private session fed the same files
/// one request at a time (the documented sequential-engine equivalence).
std::vector<std::string> ReferenceStream(
    const std::string& salt, const std::vector<config::ConfigFile>& files) {
  core::ServiceOptions options;
  options.base.salt = salt;
  const auto context = pipeline::MakeServiceContext(std::move(options));
  const auto session = context->CreateSession();
  std::vector<std::string> out;
  for (const auto& file : files) {
    pipeline::CorpusPipeline pipeline(context, session);
    out.push_back(pipeline.AnonymizeCorpus({file}).front().ToText());
  }
  return out;
}

// --- 1. session streaming == the sequential engine ----------------------

TEST(ServiceSession, StreamedRequestsMatchSequentialEngineStream) {
  const auto files = IosCorpus(71, 6);

  core::ServiceOptions options;
  options.base.salt = "svc-seq";
  const auto context = pipeline::MakeServiceContext(std::move(options));
  const auto session = context->CreateSession();

  core::AnonymizerOptions standalone_options;
  standalone_options.salt = "svc-seq";
  core::Anonymizer standalone(standalone_options);

  for (const auto& file : files) {
    pipeline::CorpusPipeline pipeline(context, session);
    const auto via_session = pipeline.AnonymizeCorpus({file});
    const auto via_engine = standalone.AnonymizeFile(file);
    ASSERT_EQ(via_session.size(), 1u);
    EXPECT_EQ(via_session.front().ToText(), via_engine.ToText())
        << file.name();
  }
  EXPECT_EQ(session->salt(), "svc-seq");
}

TEST(ServiceSession, FirstRequestMatchesFreshCliRun) {
  const auto files = IosCorpus(72, 3);

  // CLI equivalent: a fresh batch pipeline over just this file.
  pipeline::PipelineOptions cli_options;
  cli_options.base.salt = "svc-base:tenant-x";
  pipeline::CorpusPipeline cli(std::move(cli_options));
  const auto expected = cli.AnonymizeCorpus({files[0]});

  core::ServiceOptions options;
  options.base.salt = "svc-base:tenant-x";
  const auto context = pipeline::MakeServiceContext(std::move(options));
  pipeline::CorpusPipeline fresh(context, context->CreateSession());
  const auto actual = fresh.AnonymizeCorpus({files[0]});

  ASSERT_EQ(actual.size(), expected.size());
  EXPECT_EQ(actual.front().ToText(), expected.front().ToText());
}

// --- 2. >= 8 concurrent tenants over real HTTP --------------------------

TEST(AnonymizationService, ConcurrentTenantsMatchPerSaltReferenceRuns) {
  constexpr int kTenants = 8;
  constexpr int kFilesPerTenant = 3;

  core::ServiceOptions options;
  options.base.salt = "svc-base";
  const auto context = pipeline::MakeServiceContext(std::move(options));
  service::AnonymizationService anonymization(context);

  obs::ExpositionServer::Options server_options;  // 127.0.0.1:0
  server_options.handler_threads = kTenants;
  server_options.max_pending = 64;
  server_options.overload_status = 429;
  obs::ExpositionServer server(server_options, [] { return std::string(); });
  anonymization.RegisterRoutes(server);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  // Per-tenant corpora (alternating dialects) and reference streams.
  std::vector<std::vector<config::ConfigFile>> corpora;
  std::vector<std::vector<std::string>> expected;
  for (int t = 0; t < kTenants; ++t) {
    corpora.push_back(t % 2 == 0
                          ? IosCorpus(200 + t, kFilesPerTenant)
                          : JunosCorpus(200 + t, kFilesPerTenant));
    expected.push_back(ReferenceStream(
        "svc-base:t" + std::to_string(t), corpora.back()));
  }

  std::vector<std::vector<ParsedResponse>> responses(kTenants);
  {
    std::vector<std::thread> clients;
    clients.reserve(kTenants);
    for (int t = 0; t < kTenants; ++t) {
      clients.emplace_back([&, t] {
        const std::string tenant = "t" + std::to_string(t);
        for (const auto& file : corpora[static_cast<std::size_t>(t)]) {
          responses[static_cast<std::size_t>(t)].push_back(
              ParseResponse(RawHttp(
                  server.port(),
                  BuildPost("/v1/anonymize",
                            {{"X-Confanon-Tenant", tenant},
                             {"X-Confanon-Name", file.name()}},
                            file.ToText()))));
        }
      });
    }
    for (auto& client : clients) client.join();
  }

  for (int t = 0; t < kTenants; ++t) {
    const auto& stream = responses[static_cast<std::size_t>(t)];
    ASSERT_EQ(stream.size(), static_cast<std::size_t>(kFilesPerTenant));
    for (int i = 0; i < kFilesPerTenant; ++i) {
      const ParsedResponse& response = stream[static_cast<std::size_t>(i)];
      EXPECT_EQ(response.status, 200) << "tenant " << t << " file " << i;
      EXPECT_NE(response.head.find("Transfer-Encoding: chunked"),
                std::string::npos);
      EXPECT_EQ(response.body,
                expected[static_cast<std::size_t>(t)]
                        [static_cast<std::size_t>(i)])
          << "tenant " << t << " file " << i;
    }
  }

  // The sessions endpoint reflects every tenant with its request count.
  const ParsedResponse sessions =
      ParseResponse(RawHttp(server.port(), "GET /v1/sessions HTTP/1.1\r\n"
                                           "Host: localhost\r\n"
                                           "Connection: close\r\n\r\n"));
  EXPECT_EQ(sessions.status, 200);
  for (int t = 0; t < kTenants; ++t) {
    EXPECT_NE(
        sessions.body.find("\"tenant\":\"t" + std::to_string(t) + "\""),
        std::string::npos)
        << sessions.body;
  }
  EXPECT_NE(sessions.body.find("\"requests\":3"), std::string::npos);
  EXPECT_EQ(anonymization.session_count(), static_cast<std::size_t>(kTenants));
  server.Stop();
}

// --- 3. tenants differ only by renaming ---------------------------------

TEST(AnonymizationService, TenantOutputsArePairIsomorphic) {
  const auto files = IosCorpus(88, 5);
  // Two tenants of the same daemon anonymize the SAME corpus under
  // different derived salts; the audit must see identical structure.
  std::vector<config::ConfigFile> tenant_a, tenant_b;
  for (const auto& [salt, out] :
       {std::pair<std::string, std::vector<config::ConfigFile>*>{
            "svc-base:tenant-a", &tenant_a},
        {"svc-base:tenant-b", &tenant_b}}) {
    core::ServiceOptions options;
    options.base.salt = salt;
    const auto context = pipeline::MakeServiceContext(std::move(options));
    const auto session = context->CreateSession();
    for (const auto& file : files) {
      pipeline::CorpusPipeline pipeline(context, session);
      out->push_back(pipeline.AnonymizeCorpus({file}).front());
    }
  }
  const audit::AuditResult result = audit::ComparePair(tenant_a, tenant_b);
  EXPECT_FALSE(result.HasErrors()) << result.ToText();
  EXPECT_EQ(result.files_scanned, tenant_a.size() + tenant_b.size());
}

// --- 4. admission control -----------------------------------------------

TEST(AnonymizationService, OverloadedQueueAnswers429) {
  obs::ExpositionServer::Options server_options;
  server_options.handler_threads = 1;
  server_options.max_pending = 1;
  server_options.overload_status = 429;
  obs::ExpositionServer server(server_options, [] { return std::string(); });

  std::promise<void> handler_entered;
  std::promise<void> release;
  std::shared_future<void> release_future(release.get_future());
  bool entered = false;  // only the first request signals the promise
  server.AddRoute("GET", "/slow",
                  [&](const obs::HttpRequest&, obs::HttpResponseWriter& out) {
                    if (!entered) {
                      entered = true;
                      handler_entered.set_value();
                    }
                    release_future.wait();
                    out.Send(200, "text/plain", "done\n");
                  });
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  const std::string slow_request =
      "GET /slow HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n";
  // First request occupies the only handler thread...
  auto first = std::async(std::launch::async,
                          [&] { return RawHttp(server.port(), slow_request); });
  handler_entered.get_future().wait();
  // ...the second parks in the queue (capacity 1)...
  auto second = std::async(std::launch::async,
                           [&] { return RawHttp(server.port(), slow_request); });
  // ...give the accept loop time to enqueue it, then overflow.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  const ParsedResponse rejected =
      ParseResponse(RawHttp(server.port(), slow_request));
  EXPECT_EQ(rejected.status, 429) << rejected.head;
  EXPECT_GE(server.rejected(), 1u);

  release.set_value();
  EXPECT_EQ(ParseResponse(first.get()).status, 200);
  EXPECT_EQ(ParseResponse(second.get()).status, 200);
  server.Stop();
}

// --- request validation -------------------------------------------------

TEST(AnonymizationService, RejectsMalformedRequests) {
  core::ServiceOptions options;
  options.base.salt = "svc-base";
  const auto context = pipeline::MakeServiceContext(std::move(options));
  service::AnonymizationService anonymization(context);

  obs::ExpositionServer::Options server_options;
  server_options.handler_threads = 2;
  server_options.max_body_bytes = 1024;
  obs::ExpositionServer server(server_options, [] { return std::string(); });
  anonymization.RegisterRoutes(server);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  // Empty body.
  EXPECT_EQ(ParseResponse(RawHttp(server.port(),
                                  BuildPost("/v1/anonymize", {}, "")))
                .status,
            400);
  // Tenant name with a space.
  EXPECT_EQ(ParseResponse(
                RawHttp(server.port(),
                        BuildPost("/v1/anonymize",
                                  {{"X-Confanon-Tenant", "a b"}}, "x\n")))
                .status,
            400);
  // Body beyond max_body_bytes.
  EXPECT_EQ(ParseResponse(RawHttp(server.port(),
                                  BuildPost("/v1/anonymize", {},
                                            std::string(2048, 'x'))))
                .status,
            413);
  // Wrong method on a registered path.
  EXPECT_EQ(ParseResponse(
                RawHttp(server.port(), "GET /v1/anonymize HTTP/1.1\r\n"
                                       "Host: localhost\r\n"
                                       "Connection: close\r\n\r\n"))
                .status,
            405);
  server.Stop();
}

// --- 5. per-tenant pass-lists gate on static verification ---------------

TEST(AnonymizationService, PassListRouteVerifiesBeforeInstalling) {
  core::ServiceOptions options;
  options.base.salt = "svc-base";
  const auto context = pipeline::MakeServiceContext(std::move(options));
  service::AnonymizationService anonymization(context);

  obs::ExpositionServer::Options server_options;
  server_options.handler_threads = 2;
  obs::ExpositionServer server(server_options, [] { return std::string(); });
  anonymization.RegisterRoutes(server);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  const std::vector<std::pair<std::string, std::string>> tenant = {
      {"X-Confanon-Tenant", "acme"}};

  // A provably leaky list (an IPv4 literal) is refused with the
  // verifier's finding rendered in the body, before any session exists.
  const ParsedResponse leaky = ParseResponse(RawHttp(
      server.port(), BuildPost("/v1/passlist", tenant, "10.0.0.1\n")));
  EXPECT_EQ(leaky.status, 422);
  EXPECT_NE(leaky.body.find("VER-001"), std::string::npos) << leaky.body;
  EXPECT_EQ(anonymization.FindSession("acme"), nullptr);

  // A clean list installs and reports its verification counts.
  const ParsedResponse clean = ParseResponse(RawHttp(
      server.port(),
      BuildPost("/v1/passlist", tenant, "# corp words\nzephyrix\n")));
  EXPECT_EQ(clean.status, 200) << clean.body;
  EXPECT_NE(clean.body.find("\"entries\":1"), std::string::npos)
      << clean.body;

  // The installed extras shape this tenant's output: the token survives
  // where an unknown word would hash.
  const ParsedResponse anonymized = ParseResponse(RawHttp(
      server.port(), BuildPost("/v1/anonymize", tenant,
                               "interface zephyrix\n")));
  EXPECT_EQ(anonymized.status, 200);
  EXPECT_NE(anonymized.body.find("zephyrix"), std::string::npos)
      << anonymized.body;

  // Once the tenant has served traffic the list is immutable: 409.
  const ParsedResponse late = ParseResponse(RawHttp(
      server.port(), BuildPost("/v1/passlist", tenant, "quorvane\n")));
  EXPECT_EQ(late.status, 409) << late.body;
  server.Stop();
}

}  // namespace
}  // namespace confanon
