// Unit tests for the generator's building blocks: the address plan, the
// name corpora, and config-writer details (dialect quirks, wildcard
// rendering, block structure).
#include <gtest/gtest.h>

#include <set>

#include "config/dialect.h"
#include "config/tokenizer.h"
#include "gen/addressing.h"
#include "gen/config_writer.h"
#include "gen/names.h"
#include "gen/network_gen.h"
#include "util/strings.h"

namespace confanon::gen {
namespace {

// --- address plan ---

TEST(AddressPlan, SubnetsAreAlignedAndDisjoint) {
  util::Rng rng(41);
  AddressPlan plan(rng, NetworkProfile::kBackbone, 40);
  std::vector<net::Prefix> allocated;
  for (int length : {24, 26, 29, 25, 30, 24, 28}) {
    const net::Prefix subnet = plan.AllocateSubnet(length);
    EXPECT_EQ(subnet.length(), length);
    // Aligned: the base address is a multiple of the subnet size.
    EXPECT_EQ(subnet.address().value() %
                  (1u << (32 - static_cast<unsigned>(length))),
              0u);
    for (const net::Prefix& earlier : allocated) {
      EXPECT_FALSE(earlier.Contains(subnet) || subnet.Contains(earlier))
          << earlier.ToString() << " overlaps " << subnet.ToString();
    }
    allocated.push_back(subnet);
  }
}

TEST(AddressPlan, RegionsAreDisjoint) {
  util::Rng rng(43);
  AddressPlan plan(rng, NetworkProfile::kBackbone, 40);
  const net::Prefix lan = plan.AllocateSubnet(24);
  const net::Prefix link = plan.AllocateLink();
  const net::Ipv4Address loopback = plan.AllocateLoopback();
  EXPECT_FALSE(lan.Contains(link.address()));
  EXPECT_FALSE(lan.Contains(loopback));
  EXPECT_FALSE(link.Contains(loopback));
  // Everything stays inside the base block.
  EXPECT_TRUE(plan.base().Contains(lan.address()));
  EXPECT_TRUE(plan.base().Contains(link.address()));
  EXPECT_TRUE(plan.base().Contains(loopback));
}

TEST(AddressPlan, LinksAreSlash30AndSequential) {
  util::Rng rng(47);
  AddressPlan plan(rng, NetworkProfile::kBackbone, 40);
  const net::Prefix first = plan.AllocateLink();
  const net::Prefix second = plan.AllocateLink();
  EXPECT_EQ(first.length(), 30);
  EXPECT_EQ(second.address().value(), first.address().value() + 4);
}

TEST(AddressPlan, EnterpriseUsesRfc1918) {
  util::Rng rng(53);
  AddressPlan plan(rng, NetworkProfile::kEnterprise, 40);
  EXPECT_EQ(plan.base().address().Octet(0), 10);
}

TEST(AddressPlan, BlockScalesWithRouterCount) {
  util::Rng rng_small(59), rng_large(59);
  AddressPlan small(rng_small, NetworkProfile::kBackbone, 30);
  AddressPlan large(rng_large, NetworkProfile::kBackbone, 300);
  EXPECT_EQ(small.base().length(), 16);
  EXPECT_EQ(large.base().length(), 12);
}

TEST(AddressPlan, NeverAllocatesSpecialBases) {
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    util::Rng rng(seed);
    AddressPlan plan(rng, NetworkProfile::kBackbone, 40);
    const int first = plan.base().address().Octet(0);
    EXPECT_NE(first, 0);
    EXPECT_NE(first, 10);
    EXPECT_NE(first, 127);
    EXPECT_LT(first, 192);
  }
}

// --- names ---

TEST(Names, CorporaAreNonTrivialAndDistinct) {
  EXPECT_GE(CompanyNames().size(), 20u);
  EXPECT_GE(CityCodes().size(), 20u);
  EXPECT_GE(PeerIsps().size(), 10u);
  std::set<std::string> companies(CompanyNames().begin(),
                                  CompanyNames().end());
  EXPECT_EQ(companies.size(), CompanyNames().size());
}

TEST(Names, DescriptionsEmbedIdentity) {
  util::Rng rng(61);
  for (int i = 0; i < 20; ++i) {
    const std::string text = MakeDescription(rng, "foocorp", "lax");
    EXPECT_TRUE(text.find("foocorp") != std::string::npos ||
                text.find("lax") != std::string::npos ||
                text.find("crossing") != std::string::npos)
        << text;
  }
}

TEST(Names, BannerEmbedsCompanyAndContact) {
  util::Rng rng(67);
  const std::string banner = MakeBannerText(rng, "globex");
  EXPECT_NE(banner.find("globex"), std::string::npos);
  EXPECT_NE(banner.find("noc@globex.com"), std::string::npos);
}

// --- config writer details ---

gen::NetworkSpec Sample(std::uint64_t seed, int routers = 14) {
  GeneratorParams params;
  params.seed = seed;
  params.router_count = routers;
  return GenerateNetwork(params, 0);
}

TEST(ConfigWriter, WildcardMasksComplementNetmasks) {
  const auto network = Sample(71);
  for (const auto& file : WriteNetworkConfigs(network)) {
    for (const std::string_view raw : file.lines()) {
      const auto split = config::SplitConfigLine(raw);
      if (split.words.size() >= 5 && split.words[0] == "network" &&
          util::ToLower(split.words[3]) == "area") {
        const auto wildcard = net::Ipv4Address::Parse(split.words[2]);
        ASSERT_TRUE(wildcard.has_value()) << raw;
        EXPECT_TRUE(net::IsWildcardMask(*wildcard)) << raw;
      }
    }
  }
}

TEST(ConfigWriter, VersionLineMatchesDialect) {
  const auto network = Sample(73);
  for (std::size_t i = 0; i < network.routers.size(); ++i) {
    const auto file = WriteConfig(network.routers[i], network);
    const config::Dialect dialect =
        config::MakeDialect(network.routers[i].dialect);
    EXPECT_EQ(file.lines()[0], "version " + dialect.version_line);
  }
}

TEST(ConfigWriter, EveryInterfaceBlockHasAddress) {
  const auto network = Sample(79);
  for (const auto& file : WriteNetworkConfigs(network)) {
    bool in_interface = false;
    bool saw_address = true;
    for (const std::string_view raw : file.lines()) {
      const auto split = config::SplitConfigLine(raw);
      if (split.words.empty()) continue;
      if (split.indent == 0) {
        if (in_interface) {
          EXPECT_TRUE(saw_address) << file.name();
        }
        in_interface = split.words[0] == "interface";
        saw_address = false;
        continue;
      }
      if (in_interface && split.words.size() >= 3 &&
          split.words[0] == "ip" && split.words[1] == "address") {
        saw_address = true;
      }
    }
  }
}

TEST(ConfigWriter, EndsWithEnd) {
  const auto network = Sample(83);
  for (const auto& file : WriteNetworkConfigs(network)) {
    ASSERT_FALSE(file.lines().empty());
    EXPECT_EQ(file.lines().back(), "end");
  }
}

TEST(ConfigWriter, BannerBracketedByDelimiters) {
  const auto network = Sample(89, 30);
  for (const auto& file : WriteNetworkConfigs(network)) {
    const auto& lines = file.lines();
    for (std::size_t i = 0; i < lines.size(); ++i) {
      if (util::StartsWith(lines[i], "banner motd")) {
        // The region must terminate with the delimiter within a few lines.
        bool closed = false;
        for (std::size_t j = i + 1; j < lines.size() && j < i + 5; ++j) {
          if (lines[j] == "^C") {
            closed = true;
            break;
          }
        }
        EXPECT_TRUE(closed) << file.name();
      }
    }
  }
}

TEST(ConfigWriter, DoubleSpaceArtifactFollowsDialect) {
  // Find a router whose dialect has the artifact and verify the writer
  // reproduces it (the anonymizer must cope with it; config tests cover
  // that side).
  bool found = false;
  for (std::uint64_t seed = 100; seed < 140 && !found; ++seed) {
    const auto network = Sample(seed, 10);
    for (const auto& router : network.routers) {
      const config::Dialect dialect = config::MakeDialect(router.dialect);
      if (!dialect.double_space_artifact || !router.bgp.has_value() ||
          router.bgp->neighbors.empty()) {
        continue;
      }
      const auto file = WriteConfig(router, network);
      EXPECT_NE(file.ToText().find("remote-as  "), std::string::npos);
      found = true;
      break;
    }
  }
  EXPECT_TRUE(found) << "no dialect with the artifact sampled";
}

TEST(ConfigWriter, CoreRoutersDeclareBackboneArea) {
  const auto network = Sample(97, 24);
  bool saw_two_areas = false;
  for (const auto& router : network.routers) {
    for (const auto& igp : router.igps) {
      if (!igp.backbone_networks.empty()) {
        const auto file = WriteConfig(router, network);
        const std::string text = file.ToText();
        EXPECT_NE(text.find(" area 0"), std::string::npos);
        saw_two_areas = true;
      }
    }
  }
  EXPECT_TRUE(saw_two_areas);
}

}  // namespace
}  // namespace confanon::gen
