// Property tests for the 4-way batched SHA-1 kernel (util/sha1_batch.h).
//
// The batch kernel must be bit-identical to the reference util::Sha1 on
// every lane, for every message the word-hash path can produce (lengths
// 0..55, arbitrary bytes), regardless of which lane a message lands in,
// how many lanes are live, and whether lanes repeat. Both the dispatched
// implementation and the always-compiled scalar fallback are checked, so
// the forced-scalar CI leg exercises the same suite.

#include <algorithm>
#include <array>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "core/string_hasher.h"
#include "util/rng.h"
#include "util/sha1.h"
#include "util/sha1_batch.h"

namespace confanon {
namespace {

using util::Sha1;
using util::Sha1Batch;

Sha1::Digest Reference(std::string_view msg) { return Sha1::Hash(msg); }

std::string RandomMessage(util::Rng& rng, std::size_t len) {
  std::string msg;
  msg.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    msg += static_cast<char>(rng.Below(256));
  }
  return msg;
}

void ExpectBatchMatchesReference(const std::array<std::string, 4>& msgs) {
  std::string_view views[Sha1Batch::kLanes];
  for (std::size_t l = 0; l < Sha1Batch::kLanes; ++l) views[l] = msgs[l];

  Sha1::Digest dispatched[Sha1Batch::kLanes];
  Sha1Batch::Hash4(views, dispatched);
  Sha1::Digest scalar[Sha1Batch::kLanes];
  util::sha1x4_scalar::Hash4(views, scalar);

  for (std::size_t l = 0; l < Sha1Batch::kLanes; ++l) {
    const Sha1::Digest want = Reference(msgs[l]);
    EXPECT_EQ(util::ToHex(dispatched[l]), util::ToHex(want))
        << "dispatch lane " << l << " len " << msgs[l].size();
    EXPECT_EQ(util::ToHex(scalar[l]), util::ToHex(want))
        << "scalar4 lane " << l << " len " << msgs[l].size();
  }
}

TEST(Sha1Batch, ImplNameMatchesBuild) {
  const std::string name = util::Sha1BatchImplName();
#if defined(CONFANON_FORCE_SCALAR_SHA1)
  EXPECT_EQ(name, "scalar4");
#else
  EXPECT_TRUE(name == "sse2" || name == "neon" || name == "scalar4") << name;
#endif
}

TEST(Sha1Batch, EveryLengthZeroTo55) {
  util::Rng rng(20260807);
  // Each batch covers four consecutive lengths, so all of 0..55 is hit,
  // with fresh random payloads per trial.
  for (int trial = 0; trial < 8; ++trial) {
    for (std::size_t base = 0; base <= Sha1Batch::kMaxMessageLen - 3;
         base += 4) {
      std::array<std::string, 4> msgs;
      for (std::size_t l = 0; l < Sha1Batch::kLanes; ++l) {
        msgs[l] = RandomMessage(rng, base + l);
      }
      ExpectBatchMatchesReference(msgs);
    }
  }
}

TEST(Sha1Batch, RandomLengthsAndBytes) {
  util::Rng rng(99881);
  for (int trial = 0; trial < 500; ++trial) {
    std::array<std::string, 4> msgs;
    for (auto& msg : msgs) {
      msg = RandomMessage(rng, rng.Below(Sha1Batch::kMaxMessageLen + 1));
    }
    ExpectBatchMatchesReference(msgs);
  }
}

TEST(Sha1Batch, AllLanePermutations) {
  std::array<std::string, 4> base = {"", "a", "router bgp 7018",
                                     std::string(55, 'x')};
  std::array<std::size_t, 4> perm = {0, 1, 2, 3};
  do {
    std::array<std::string, 4> msgs;
    for (std::size_t l = 0; l < 4; ++l) msgs[l] = base[perm[l]];
    ExpectBatchMatchesReference(msgs);
  } while (std::next_permutation(perm.begin(), perm.end()));
}

TEST(Sha1Batch, PartialBatchesWithDummyLanes) {
  // Callers with 1-3 live messages pad the remaining lanes with empty
  // dummies and discard those digests; the dummies must not perturb the
  // live lanes, and must themselves hash correctly.
  util::Rng rng(777);
  for (std::size_t live = 1; live <= 3; ++live) {
    std::array<std::string, 4> msgs;  // default: empty dummy lanes
    for (std::size_t l = 0; l < live; ++l) {
      msgs[l] = RandomMessage(rng, 1 + rng.Below(Sha1Batch::kMaxMessageLen));
    }
    ExpectBatchMatchesReference(msgs);
  }
}

TEST(Sha1Batch, IdenticalMessagesInAllLanes) {
  std::array<std::string, 4> msgs;
  msgs.fill("interface GigabitEthernet0/0");
  ExpectBatchMatchesReference(msgs);
  Sha1::Digest digests[Sha1Batch::kLanes];
  std::string_view views[Sha1Batch::kLanes] = {msgs[0], msgs[1], msgs[2],
                                               msgs[3]};
  Sha1Batch::Hash4(views, digests);
  for (std::size_t l = 1; l < Sha1Batch::kLanes; ++l) {
    EXPECT_EQ(digests[0], digests[l]);
  }
}

TEST(Sha1Batch, MatchesSaltedDigestLayout) {
  // The word-hash path feeds salt || 0x00 || word as one message; the
  // batched digest must equal util::SaltedDigest byte for byte.
  const std::string salt = "test-secret";
  const std::array<std::string, 4> words = {"UUNET-import", "CustA", "",
                                            "h0123456789"};
  std::array<std::string, 4> msgs;
  for (std::size_t l = 0; l < 4; ++l) {
    msgs[l] = salt;
    msgs[l].push_back('\0');
    msgs[l] += words[l];
  }
  std::string_view views[4] = {msgs[0], msgs[1], msgs[2], msgs[3]};
  Sha1::Digest digests[4];
  Sha1Batch::Hash4(views, digests);
  for (std::size_t l = 0; l < 4; ++l) {
    EXPECT_EQ(util::ToHex(digests[l]),
              util::ToHex(util::SaltedDigest(salt, words[l])));
  }
}

// --- StringHasher batched path -------------------------------------------

TEST(StringHasherBatch, HashBatchMatchesScalarHash) {
  core::StringHasher batched("secret-salt");
  core::StringHasher scalar("secret-salt");

  const std::vector<std::string> words = {"UUNET-import", "CustA-export",
                                          "SEATTLE-POP",  "core1",
                                          "loopback0",    "community-out"};
  std::vector<std::string_view> views(words.begin(), words.end());
  for (std::size_t start = 0; start < views.size(); start += 4) {
    const std::size_t count = std::min<std::size_t>(4, views.size() - start);
    const std::string* out[4] = {};
    batched.HashBatch(views.data() + start, count, out);
    for (std::size_t i = 0; i < count; ++i) {
      ASSERT_NE(out[i], nullptr);
      EXPECT_EQ(*out[i], scalar.Hash(words[start + i]));
    }
  }
  EXPECT_EQ(batched.DistinctCount(), words.size());
}

TEST(StringHasherBatch, OversizedWordsFallBackToScalarDigest) {
  // salt + separator + word beyond one SHA-1 block must still produce the
  // exact multi-block scalar token.
  core::StringHasher batched("salt");
  core::StringHasher scalar("salt");
  const std::string long_word(120, 'q');
  const std::string medium_word(55, 'm');  // oversized once salted
  const std::string_view views[3] = {long_word, medium_word, "short"};
  const std::string* out[3] = {};
  batched.HashBatch(views, 3, out);
  for (std::size_t i = 0; i < 3; ++i) {
    ASSERT_NE(out[i], nullptr);
    EXPECT_EQ(*out[i], scalar.Hash(views[i]));
  }
}

TEST(StringHasherBatch, FindProbesWithoutInstalling) {
  core::StringHasher hasher("salt");
  EXPECT_EQ(hasher.Find("fresh-word"), nullptr);
  EXPECT_EQ(hasher.DistinctCount(), 0u);
  const std::string& token = hasher.Hash("fresh-word");
  const std::string* found = hasher.Find("fresh-word");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found, &token);
}

TEST(StringHasherBatch, RandomizedBatchAgainstScalar) {
  util::Rng rng(31337);
  core::StringHasher batched("long-ish-salt-value");
  core::StringHasher scalar("long-ish-salt-value");
  static constexpr char kPool[] =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-_.";
  for (int trial = 0; trial < 200; ++trial) {
    std::array<std::string, 4> words;
    for (std::size_t w = 0; w < words.size(); ++w) {
      // Unique (trial, lane) prefix: HashBatch requires distinct words
      // per call.
      std::string word =
          std::to_string(trial) + "t" + std::to_string(w) + "-";
      const std::size_t len = 1 + rng.Below(60);
      for (std::size_t i = 0; i < len; ++i) {
        word += kPool[rng.Below(sizeof(kPool) - 1)];
      }
      words[w] = std::move(word);
    }
    std::string_view views[4] = {words[0], words[1], words[2], words[3]};
    const std::string* out[4] = {};
    batched.HashBatch(views, 4, out);
    for (std::size_t i = 0; i < 4; ++i) {
      ASSERT_NE(out[i], nullptr);
      EXPECT_EQ(*out[i], scalar.Hash(words[i])) << words[i];
    }
  }
}

}  // namespace
}  // namespace confanon
