#include "gen/network_gen.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "analysis/characteristics.h"
#include "config/tokenizer.h"
#include "gen/config_writer.h"
#include "gen/names.h"
#include "passlist/passlist.h"
#include "util/strings.h"

namespace confanon::gen {
namespace {

GeneratorParams Params(int routers, std::uint64_t seed = 11) {
  GeneratorParams params;
  params.router_count = routers;
  params.seed = seed;
  return params;
}

TEST(Generator, Deterministic) {
  const NetworkSpec a = GenerateNetwork(Params(20), 0);
  const NetworkSpec b = GenerateNetwork(Params(20), 0);
  ASSERT_EQ(a.routers.size(), b.routers.size());
  const auto configs_a = WriteNetworkConfigs(a);
  const auto configs_b = WriteNetworkConfigs(b);
  for (std::size_t i = 0; i < configs_a.size(); ++i) {
    EXPECT_EQ(configs_a[i].ToText(), configs_b[i].ToText());
  }
}

TEST(Generator, DistinctIndicesDiffer) {
  const NetworkSpec a = GenerateNetwork(Params(20), 0);
  const NetworkSpec b = GenerateNetwork(Params(20), 1);
  EXPECT_NE(a.name, b.name);
  EXPECT_NE(a.asn, b.asn);
}

TEST(Generator, TruthMatchesSpec) {
  const NetworkSpec network = GenerateNetwork(Params(30), 3);
  EXPECT_EQ(network.truth.router_count, network.routers.size());
  std::size_t interfaces = 0, speakers = 0, ebgp = 0;
  for (const RouterSpec& router : network.routers) {
    interfaces += router.interfaces.size();
    if (router.bgp.has_value()) {
      ++speakers;
      for (const auto& neighbor : router.bgp->neighbors) {
        if (neighbor.external) ++ebgp;
      }
    }
  }
  EXPECT_EQ(network.truth.interface_count, interfaces);
  EXPECT_EQ(network.truth.bgp_speaker_count, speakers);
  EXPECT_EQ(network.truth.ebgp_session_count, ebgp);
}

TEST(Generator, TruthMatchesExtractedCharacteristics) {
  // The configs must faithfully render the spec: re-extract counts from
  // the text and compare with ground truth.
  const NetworkSpec network = GenerateNetwork(Params(25), 5);
  const auto configs = WriteNetworkConfigs(network);
  const analysis::NetworkCharacteristics stats =
      analysis::ExtractCharacteristics(configs);
  EXPECT_EQ(stats.router_count, network.truth.router_count);
  EXPECT_EQ(stats.interface_count, network.truth.interface_count);
  EXPECT_EQ(stats.bgp_speaker_count, network.truth.bgp_speaker_count);
  EXPECT_EQ(stats.ebgp_session_count, network.truth.ebgp_session_count);
}

TEST(Generator, EveryLinkSubnetHasTwoEnds) {
  const NetworkSpec network = GenerateNetwork(Params(30), 7);
  // Interfaces on eBGP peering links (the far side lives in the peer's
  // network) and customer-aggregation tails are excluded: only internal
  // /30s must pair up.
  std::set<std::uint32_t> external_bases;
  for (const RouterSpec& router : network.routers) {
    if (!router.bgp.has_value()) continue;
    for (const auto& neighbor : router.bgp->neighbors) {
      if (neighbor.external) {
        external_bases.insert(neighbor.address.value() & ~3u);
      }
    }
  }
  std::map<std::uint32_t, int> ends;  // /30 base -> count
  for (const RouterSpec& router : network.routers) {
    for (const InterfaceSpec& iface : router.interfaces) {
      if (iface.prefix_length != 30) continue;
      const std::uint32_t base = iface.address.value() & ~3u;
      if (external_bases.contains(base)) continue;
      if (iface.name.find('.') != std::string::npos) continue;  // customer
      ends[base]++;
    }
  }
  for (const auto& [base, count] : ends) {
    EXPECT_EQ(count, 2) << net::Ipv4Address(base).ToString();
  }
}

TEST(Generator, AddressesAreUniquePerNetwork) {
  const NetworkSpec network = GenerateNetwork(Params(40), 9);
  std::set<std::uint32_t> seen;
  for (const RouterSpec& router : network.routers) {
    for (const InterfaceSpec& iface : router.interfaces) {
      EXPECT_TRUE(seen.insert(iface.address.value()).second)
          << iface.address.ToString() << " duplicated";
    }
  }
}

TEST(Generator, CommandKeywordsAllPassListed) {
  // Every alphabetic first word of a command must be on the pass-list —
  // otherwise anonymization would destroy command structure and the
  // validation suites would fail for a spurious reason.
  const passlist::PassList list = passlist::PassList::Builtin();
  const NetworkSpec network = GenerateNetwork(Params(30), 13);
  const auto configs = WriteNetworkConfigs(network);
  std::set<std::string> missing;
  for (const auto& file : configs) {
    bool in_banner = false;
    for (const std::string_view line : file.lines()) {
      const auto split = config::SplitConfigLine(line);
      if (split.words.empty()) continue;
      const std::string first = util::ToLower(split.words[0]);
      if (first == "banner") {
        in_banner = true;
        continue;
      }
      if (in_banner) {
        if (line.find('^') != std::string::npos) in_banner = false;
        continue;
      }
      if (first == "!" || first == "description") continue;
      for (const config::Segment& segment :
           config::SegmentWord(split.words[0])) {
        if (segment.alpha && !list.Contains(segment.text)) {
          missing.insert(std::string(segment.text));
        }
      }
    }
  }
  EXPECT_TRUE(missing.empty()) << "missing keywords: " << [&] {
    std::string all;
    for (const auto& word : missing) all += word + " ";
    return all;
  }();
}

TEST(Generator, PlantsIdentityLeaks) {
  const NetworkSpec network = GenerateNetwork(Params(30), 15);
  const auto configs = WriteNetworkConfigs(network);
  bool company_somewhere = false;
  for (const auto& file : configs) {
    if (file.ToText().find(network.name) != std::string::npos) {
      company_somewhere = true;
      break;
    }
  }
  EXPECT_TRUE(company_somewhere);
}

TEST(Generator, EnterpriseUsesPrivateSpace) {
  GeneratorParams params = Params(15, 21);
  params.profile = NetworkProfile::kEnterprise;
  const NetworkSpec network = GenerateNetwork(params, 0);
  std::size_t in_ten = 0, total = 0;
  for (const RouterSpec& router : network.routers) {
    for (const InterfaceSpec& iface : router.interfaces) {
      ++total;
      if (iface.address.Octet(0) == 10) ++in_ten;
    }
  }
  // Most interfaces live in 10/8 (eBGP peering links are public space).
  EXPECT_GT(in_ten * 10, total * 8);
}

TEST(Generator, RegexFeatureRatesRoughlyMatchPaper) {
  // Over many networks the planted rates approach the paper's 31-network
  // observations (2/31 public ranges, 10/31 alternation, 5/31 community).
  GeneratorParams params = Params(6, 23);
  int range = 0, alternation = 0, community = 0, compartmentalized = 0;
  const int population = 310;
  for (int i = 0; i < population; ++i) {
    const NetworkSpec network = GenerateNetwork(params, i);
    range += network.truth.uses_asn_range_regex;
    alternation += network.truth.uses_asn_alternation_regex;
    community += network.truth.uses_community_regex;
    compartmentalized += network.truth.compartmentalization !=
                         Compartmentalization::kNone;
  }
  EXPECT_NEAR(range / 10.0, 2.0, 1.5);
  EXPECT_NEAR(alternation / 10.0, 10.0, 3.0);
  EXPECT_NEAR(community / 10.0, 5.0, 2.5);
  EXPECT_NEAR(compartmentalized / 10.0, 10.0, 3.0);
}

TEST(Generator, CorpusSizesSkewed) {
  const auto corpus = GenerateCorpus(Params(0, 27), 10, 400);
  ASSERT_EQ(corpus.size(), 10u);
  std::size_t total = 0;
  for (const auto& network : corpus) total += network.routers.size();
  EXPECT_GT(total, 200u);
  EXPECT_GT(corpus.front().routers.size(), corpus.back().routers.size());
}

TEST(Names, PeerIspsCoverPaperExamples) {
  bool uunet = false, genuity = false;
  for (const PeerIsp& peer : PeerIsps()) {
    if (peer.name == "uunet") {
      uunet = true;
      EXPECT_EQ(peer.asn, 701u);
      EXPECT_EQ(peer.extra_asns.size(), 4u);  // 702-705
    }
    if (peer.name == "genuity") {
      genuity = true;
      EXPECT_EQ(peer.asn, 1u);
    }
  }
  EXPECT_TRUE(uunet);
  EXPECT_TRUE(genuity);
}

}  // namespace
}  // namespace confanon::gen
