#include "regex/dfa_to_regex.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "regex/parser.h"
#include "regex/regex.h"
#include "util/rng.h"

namespace confanon::regex {
namespace {

Dfa CompileToDfa(std::string_view pattern) {
  Ast ast;
  ParsePattern(pattern, ParseOptions{}, ast);
  return Dfa::FromNfa(Nfa::Build(ast));
}

TEST(EscapeRegexChar, EscapesMetacharacters) {
  EXPECT_EQ(EscapeRegexChar('.'), "\\.");
  EXPECT_EQ(EscapeRegexChar('('), "\\(");
  EXPECT_EQ(EscapeRegexChar('\\'), "\\\\");
  EXPECT_EQ(EscapeRegexChar('_'), "\\_");
  EXPECT_EQ(EscapeRegexChar('7'), "7");
  EXPECT_EQ(EscapeRegexChar('z'), "z");
}

TEST(CharSetToRegex, SingleChar) {
  EXPECT_EQ(CharSetToRegex(CharSet::Single('7')), "7");
  EXPECT_EQ(CharSetToRegex(CharSet::Single('.')), "\\.");
}

TEST(CharSetToRegex, Ranges) {
  CharSet digits;
  digits.AddRange('0', '9');
  EXPECT_EQ(CharSetToRegex(digits), "[0-9]");
  CharSet mixed;
  mixed.AddRange('a', 'c');
  mixed.Add('x');
  EXPECT_EQ(CharSetToRegex(mixed), "[a-cx]");
  CharSet two;
  two.Add('a');
  two.Add('b');
  EXPECT_EQ(CharSetToRegex(two), "[ab]");
}

TEST(BuildDfaFromStrings, AcceptsExactlyTheWords) {
  const std::vector<std::string> words = {"701", "702", "1239"};
  const Dfa dfa = BuildDfaFromStrings(words);
  for (const auto& word : words) {
    EXPECT_TRUE(dfa.FullMatch(word)) << word;
  }
  EXPECT_FALSE(dfa.FullMatch("703"));
  EXPECT_FALSE(dfa.FullMatch("70"));
  EXPECT_FALSE(dfa.FullMatch("7012"));
  EXPECT_FALSE(dfa.FullMatch(""));
}

TEST(BuildDfaFromStrings, HandlesSharedPrefixesAndMinimizes) {
  const std::vector<std::string> words = {"700", "701", "702", "703",
                                          "704", "705", "706", "707",
                                          "708", "709"};
  const Dfa minimal = BuildDfaFromStrings(words).Minimize();
  // 70[0-9]: states for "", "7", "70", accept, dead = 5.
  EXPECT_EQ(minimal.StateCount(), 5);
}

TEST(DfaToRegex, EmptyLanguageIsNullopt) {
  const Dfa dfa = BuildDfaFromStrings({});
  EXPECT_FALSE(DfaToRegex(dfa).has_value());
}

TEST(DfaToRegex, SingleWordRoundTrip) {
  const Dfa dfa = BuildDfaFromStrings({"701"});
  const auto expression = DfaToRegex(dfa);
  ASSERT_TRUE(expression.has_value());
  const Dfa round = CompileToDfa(*expression);
  EXPECT_TRUE(round.EquivalentTo(dfa));
}

TEST(DfaToRegex, FiniteLanguageRoundTrip) {
  const std::vector<std::vector<std::string>> languages = {
      {"701", "702", "703"},
      {"1", "22", "333"},
      {"13", "1300", "9999", "42"},
      {"0"},
      {"65535", "64512"},
  };
  for (const auto& words : languages) {
    const Dfa dfa = BuildDfaFromStrings(words).Minimize();
    const auto expression = DfaToRegex(dfa);
    ASSERT_TRUE(expression.has_value());
    const Dfa round = CompileToDfa(*expression);
    EXPECT_TRUE(round.EquivalentTo(dfa))
        << "language lost through " << *expression;
  }
}

TEST(DfaToRegex, InfiniteLanguageRoundTrip) {
  for (const char* pattern : {"(a|b)*abb", "a+b*", "(0|1){2,}", "x(yz)*"}) {
    const Dfa dfa = CompileToDfa(pattern).Minimize();
    const auto expression = DfaToRegex(dfa);
    ASSERT_TRUE(expression.has_value()) << pattern;
    EXPECT_TRUE(CompileToDfa(*expression).EquivalentTo(dfa))
        << pattern << " -> " << *expression;
  }
}

TEST(DfaToRegex, RandomFiniteLanguagesRoundTrip) {
  util::Rng rng(2024);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<std::string> words;
    const int count = static_cast<int>(rng.Between(1, 12));
    for (int i = 0; i < count; ++i) {
      words.push_back(
          std::to_string(static_cast<std::uint32_t>(rng.Below(65536))));
    }
    std::sort(words.begin(), words.end());
    words.erase(std::unique(words.begin(), words.end()), words.end());
    const Dfa dfa = BuildDfaFromStrings(words).Minimize();
    const auto expression = DfaToRegex(dfa);
    ASSERT_TRUE(expression.has_value());
    const Dfa round = CompileToDfa(*expression);
    EXPECT_TRUE(round.EquivalentTo(dfa)) << *expression;
    for (const auto& word : words) {
      EXPECT_TRUE(round.FullMatch(word)) << word << " via " << *expression;
    }
  }
}

TEST(DfaToRegex, MinimizedOutputIsSmallerForDenseRanges) {
  // 500 consecutive values compress far better through the DFA than as an
  // alternation (the ablation the paper hints at in Section 4.4).
  std::vector<std::string> words;
  std::size_t alternation_size = 0;
  for (int v = 7100; v < 7600; ++v) {
    words.push_back(std::to_string(v));
    alternation_size += words.back().size() + 1;
  }
  const auto expression = DfaToRegex(BuildDfaFromStrings(words).Minimize());
  ASSERT_TRUE(expression.has_value());
  EXPECT_LT(expression->size(), alternation_size / 4);
}

}  // namespace
}  // namespace confanon::regex
