// Rule-by-rule matrix: every disableable context rule is exercised twice —
// with the full rule set (its leak marker must be gone) and with just that
// rule disabled (the marker must survive, proving the rule and nothing
// else was responsible). This pins each of the 28 rules to an observable
// behaviour and guards against rules silently shadowing one another.
#include <gtest/gtest.h>

#include <sstream>

#include "core/anonymizer.h"

namespace confanon::core {
namespace {

struct RuleCase {
  const char* name;    // for test labels
  const char* rule;    // rule to disable in the "crippled" run
  const char* config;  // input
  const char* marker;  // identity-bearing text the rule removes
};

void PrintTo(const RuleCase& c, std::ostream* os) { *os << c.name; }

std::string RunCase(const RuleCase& test_case, bool disable) {
  AnonymizerOptions options;
  options.salt = "matrix-salt";
  if (disable) {
    options.disabled_rules.insert(test_case.rule);
  }
  Anonymizer anonymizer(std::move(options));
  return anonymizer
      .AnonymizeNetwork(
          {config::ConfigFile::FromText("r", test_case.config)})
      .front()
      .ToText();
}

class RuleMatrix : public ::testing::TestWithParam<RuleCase> {};

TEST_P(RuleMatrix, FullRuleSetRemovesMarker) {
  EXPECT_EQ(RunCase(GetParam(), false).find(GetParam().marker),
            std::string::npos)
      << RunCase(GetParam(), false);
}

TEST_P(RuleMatrix, DisabledRuleLeaksMarker) {
  EXPECT_NE(RunCase(GetParam(), true).find(GetParam().marker), std::string::npos)
      << RunCase(GetParam(), true);
}

TEST_P(RuleMatrix, RuleFiresInReport) {
  AnonymizerOptions options;
  options.salt = "matrix-salt";
  Anonymizer anonymizer(std::move(options));
  anonymizer.AnonymizeNetwork(
      {config::ConfigFile::FromText("r", GetParam().config)});
  EXPECT_TRUE(anonymizer.report().rule_fires.contains(GetParam().rule))
      << GetParam().rule;
}

INSTANTIATE_TEST_SUITE_P(
    AllRules, RuleMatrix,
    ::testing::Values(
        // The comment rules are what remove *pass-listed* phrases whose
        // arrangement leaks ("global crossing", Section 4.2) — with the
        // rule off, generic hashing passes those words through.
        RuleCase{"C1_bang_comment", rules::kStripBangComments,
                 "! circuit leased from global crossing\n", "global crossing"},
        RuleCase{"C2_description", rules::kStripFreeText,
                 "interface Ethernet0\n description link via global crossing\n",
                 "global crossing"},
        RuleCase{"C3_banner", rules::kStripBanners,
                 "banner motd ^C\nglobal crossing transit network\n^C\n",
                 "global crossing"},
        RuleCase{"M1_dialer", rules::kDialerStrings,
                 "dialer string 14085551234\n", "14085551234"},
        // SNMP community strings and passwords can be pass-listed words
        // ("public", "cisco"); only the force-hash rules remove them.
        RuleCase{"M2_snmp", rules::kSnmpStrings,
                 "snmp-server community public RO\n", "public"},
        RuleCase{"M3_secret", rules::kSecrets,
                 "enable password cisco\n", "cisco"},
        RuleCase{"M4_hostname", rules::kNameArguments,
                 // "router" is pass-listed: only the force-hash rule
                 // touches it.
                 "hostname router\n", "hostname router"},
        RuleCase{"A1_router_bgp", rules::kRouterBgp, "router bgp 1111\n",
                 "1111"},
        RuleCase{"A2_remote_as", rules::kNeighborRemoteAs,
                 "router bgp 65000\n neighbor 10.0.0.1 remote-as 701\n",
                 "remote-as 701"},
        RuleCase{"A3_local_as", rules::kNeighborLocalAs,
                 "router bgp 65000\n neighbor 10.0.0.1 local-as 702\n",
                 "local-as 702"},
        RuleCase{"A4_confed_id", rules::kConfedIdentifier,
                 "router bgp 65000\n bgp confederation identifier 703\n",
                 "703"},
        RuleCase{"A5_confed_peers", rules::kConfedPeers,
                 "router bgp 65000\n bgp confederation peers 704 705\n",
                 "704"},
        RuleCase{"A6_aspath_regex", rules::kAsPathRegex,
                 "ip as-path access-list 50 permit _70[2-5]_\n", "70[2-5]"},
        RuleCase{"A7_prepend", rules::kAsPathPrepend,
                 "route-map X permit 10\n set as-path prepend 701 701\n",
                 "701 701"},
        RuleCase{"A8_commlist_literal", rules::kCommunityListLiteral,
                 "ip community-list 5 permit 701:120\n", "701:120"},
        RuleCase{"A9_commlist_regex", rules::kCommunityListRegex,
                 "ip community-list 100 permit 701:7[1-5]..\n", "7[1-5].."},
        RuleCase{"A10_set_community", rules::kSetCommunity,
                 "route-map X permit 10\n set community 701:7100\n",
                 "701:7100"},
        RuleCase{"A11_extcommunity", rules::kSetExtcommunity,
                 "route-map X permit 10\n set extcommunity rt 701:99\n",
                 "701:99"},
        RuleCase{"I1_address", rules::kMapAddresses,
                 "logging 12.34.56.78\n", "12.34.56.78"},
        RuleCase{"I3_cidr", rules::kMapPrefixes,
                 "ip route 12.34.0.0/16 Null0\n", "12.34.0.0/16"}),
    [](const ::testing::TestParamInfo<RuleCase>& info) {
      return info.param.name;
    });

// I2 is defence in depth: even with the rule disabled the netmask
// survives, because the IP map itself passes special addresses through
// (Section 4.3's modification lives in the data structure, the rule only
// short-circuits and accounts for it).
TEST(RuleMatrixSpecial, SpecialPassthroughIsDefenceInDepth) {
  const RuleCase protect{"", rules::kSpecialPassthrough,
                         "interface Ethernet0\n"
                         " ip address 12.0.0.1 255.255.255.0\n",
                         "255.255.255.0"};
  EXPECT_NE(RunCase(protect, false).find("255.255.255.0"), std::string::npos);
  EXPECT_NE(RunCase(protect, true).find("255.255.255.0"), std::string::npos);
}

// --- Section 5 known-entity relationship export ---

TEST(KnownEntities, ExportsAnonymizedGroupings) {
  AnonymizerOptions options;
  options.salt = "entity-salt";
  AnonymizerOptions::KnownEntity entity;
  entity.label = "UUNET";  // operator-side only
  entity.asns = {701, 702};
  entity.prefixes = {*net::Prefix::Parse("157.130.0.0/16")};
  options.known_entities.push_back(entity);
  Anonymizer anonymizer(options);
  anonymizer.AnonymizeNetwork({config::ConfigFile::FromText(
      "r", "router bgp 65000\n neighbor 157.130.0.1 remote-as 701\n")});

  std::ostringstream out;
  anonymizer.ExportKnownEntities(out);
  const std::string text = out.str();
  // The label never appears; the mapped values do.
  EXPECT_EQ(text.find("UUNET"), std::string::npos);
  EXPECT_NE(text.find(std::to_string(anonymizer.asn_map().Map(701))),
            std::string::npos);
  EXPECT_NE(text.find(std::to_string(anonymizer.asn_map().Map(702))),
            std::string::npos);
  // Prefixes are exported canonicalized (host bits of the mapped base
  // truncated); containment of mapped member addresses still holds by
  // prefix preservation.
  const net::Prefix mapped_prefix(
      anonymizer.ip_anonymizer().Map(*net::Ipv4Address::Parse("157.130.0.0")),
      16);
  EXPECT_NE(text.find(mapped_prefix.ToString()), std::string::npos);
  EXPECT_TRUE(mapped_prefix.Contains(anonymizer.ip_anonymizer().Map(
      *net::Ipv4Address::Parse("157.130.0.1"))));
  // Original values never appear.
  EXPECT_EQ(text.find(" 701 "), std::string::npos);
  EXPECT_EQ(text.find("157.130.0.0"), std::string::npos);
}

TEST(KnownEntities, EmptyByDefault) {
  AnonymizerOptions options;
  options.salt = "entity-salt";
  Anonymizer anonymizer(std::move(options));
  std::ostringstream out;
  anonymizer.ExportKnownEntities(out);
  EXPECT_TRUE(out.str().empty());
}

TEST(KnownEntities, GroupingIsConsistentWithConfigRewrites) {
  // The exported grouping must agree with what the configs now say: the
  // neighbor line's rewritten ASN equals the entity's exported ASN.
  AnonymizerOptions options;
  options.salt = "entity-salt-2";
  AnonymizerOptions::KnownEntity entity;
  entity.asns = {1239};
  options.known_entities.push_back(entity);
  Anonymizer anonymizer(options);
  const auto post = anonymizer.AnonymizeNetwork(
      {config::ConfigFile::FromText(
          "r", "router bgp 65000\n neighbor 10.0.0.1 remote-as 1239\n")});
  std::ostringstream out;
  anonymizer.ExportKnownEntities(out);
  const std::string mapped = std::to_string(anonymizer.asn_map().Map(1239));
  EXPECT_NE(out.str().find(mapped), std::string::npos);
  EXPECT_NE(post.front().ToText().find("remote-as " + mapped),
            std::string::npos);
}

}  // namespace
}  // namespace confanon::core
