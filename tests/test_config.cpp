#include "config/document.h"
#include "config/dialect.h"
#include "config/tokenizer.h"

#include <gtest/gtest.h>

#include <set>

#include "util/rng.h"

namespace confanon::config {
namespace {

// --- tokenizer: the paper's two segmentation rules ---

TEST(SegmentWord, PaperExampleEthernet) {
  const auto segments = SegmentWord("ethernet0/0");
  ASSERT_EQ(segments.size(), 2u);
  EXPECT_TRUE(segments[0].alpha);
  EXPECT_EQ(segments[0].text, "ethernet");
  EXPECT_FALSE(segments[1].alpha);
  EXPECT_EQ(segments[1].text, "0/0");
}

TEST(SegmentWord, MixedIdentifier) {
  const auto segments = SegmentWord("Serial1/0.5");
  ASSERT_EQ(segments.size(), 2u);
  EXPECT_EQ(segments[0].text, "Serial");
  EXPECT_EQ(segments[1].text, "1/0.5");
}

TEST(SegmentWord, HyphenatedName) {
  const auto segments = SegmentWord("UUNET-import");
  ASSERT_EQ(segments.size(), 3u);
  EXPECT_EQ(segments[0].text, "UUNET");
  EXPECT_EQ(segments[1].text, "-");
  EXPECT_EQ(segments[2].text, "import");
}

TEST(SegmentWord, PureForms) {
  EXPECT_EQ(SegmentWord("bgp").size(), 1u);
  EXPECT_TRUE(SegmentWord("bgp")[0].alpha);
  EXPECT_EQ(SegmentWord("1234").size(), 1u);
  EXPECT_FALSE(SegmentWord("1234")[0].alpha);
  EXPECT_TRUE(SegmentWord("").empty());
}

TEST(SegmentWord, ConcatenationInvariant) {
  util::Rng rng(31);
  const char alphabet[] = "ab0.-/";
  for (int trial = 0; trial < 200; ++trial) {
    std::string word;
    const int length = static_cast<int>(rng.Below(12));
    for (int i = 0; i < length; ++i) {
      word += alphabet[static_cast<std::size_t>(rng.Below(6))];
    }
    std::string reassembled;
    for (const Segment& segment : SegmentWord(word)) {
      reassembled += segment.text;
    }
    EXPECT_EQ(reassembled, word);
  }
}

TEST(IsNonAlphabetic, Basics) {
  EXPECT_TRUE(IsNonAlphabetic("0/0"));
  EXPECT_TRUE(IsNonAlphabetic("1.2.3.4"));
  EXPECT_TRUE(IsNonAlphabetic("!"));
  EXPECT_TRUE(IsNonAlphabetic(""));
  EXPECT_FALSE(IsNonAlphabetic("Ethernet0"));
}

TEST(SplitConfigLine, IndentAndWords) {
  const SplitLine split = SplitConfigLine("  neighbor 1.2.3.4 remote-as 701");
  EXPECT_EQ(split.indent, 2);
  ASSERT_EQ(split.words.size(), 4u);
  EXPECT_EQ(split.words[0], "neighbor");
  EXPECT_EQ(split.words[3], "701");
}

TEST(LineTokens, RenderRoundTripExact) {
  for (const char* line :
       {"", " ", "!", " ip address 1.1.1.1  255.255.255.0",
        "\tdescription  two  spaces ", "a", "  leading", "trailing  "}) {
    EXPECT_EQ(TokenizeLine(line).Render(), line) << '"' << line << '"';
  }
}

TEST(LineTokens, RandomRoundTripProperty) {
  util::Rng rng(33);
  const char alphabet[] = "ab1 .\t";
  for (int trial = 0; trial < 500; ++trial) {
    std::string line;
    const int length = static_cast<int>(rng.Below(30));
    for (int i = 0; i < length; ++i) {
      line += alphabet[static_cast<std::size_t>(rng.Below(6))];
    }
    const LineTokens tokens = TokenizeLine(line);
    EXPECT_EQ(tokens.Render(), line);
    EXPECT_EQ(tokens.gaps.size(), tokens.words.size() + 1);
  }
}

TEST(LineTokens, TabOnlyGapsAndTrailingWhitespace) {
  // Tab-only separators survive verbatim, and trailing blanks land in
  // the final gap (never glued onto the last word, which a rewrite
  // would otherwise drag along).
  const LineTokens tabs = TokenizeLine("\t\tneighbor\t1.2.3.4\t\t");
  ASSERT_EQ(tabs.words.size(), 2u);
  EXPECT_EQ(tabs.gaps[0], "\t\t");
  EXPECT_EQ(tabs.words[0], "neighbor");
  EXPECT_EQ(tabs.gaps[1], "\t");
  EXPECT_EQ(tabs.words[1], "1.2.3.4");
  EXPECT_EQ(tabs.gaps[2], "\t\t");
  EXPECT_EQ(tabs.Render(), "\t\tneighbor\t1.2.3.4\t\t");

  const LineTokens trailing = TokenizeLine("shutdown   ");
  ASSERT_EQ(trailing.words.size(), 1u);
  EXPECT_EQ(trailing.words[0], "shutdown");
  EXPECT_EQ(trailing.gaps[1], "   ");
}

TEST(LineTokens, EmptyAndBlankLines) {
  const LineTokens empty = TokenizeLine("");
  EXPECT_TRUE(empty.words.empty());
  ASSERT_EQ(empty.gaps.size(), 1u);
  EXPECT_EQ(empty.gaps[0], "");
  EXPECT_EQ(empty.Render(), "");

  const LineTokens blank = TokenizeLine(" \t \t");
  EXPECT_TRUE(blank.words.empty());
  ASSERT_EQ(blank.gaps.size(), 1u);
  EXPECT_EQ(blank.Render(), " \t \t");
}

TEST(LineTokens, CarriageReturnIsPartOfTheWord) {
  // A stray CR (CRLF file read as LF-split lines) is not a separator:
  // only space and tab delimit words, so the CR rides along with the
  // last word and the round trip stays exact.
  const LineTokens tokens = TokenizeLine("hostname edge-1\r");
  ASSERT_EQ(tokens.words.size(), 2u);
  EXPECT_EQ(tokens.words[1], "edge-1\r");
  EXPECT_EQ(tokens.Render(), "hostname edge-1\r");
}

TEST(LineTokens, ArbitraryByteRoundTripProperty) {
  // Render() == input for fully random byte strings — every value
  // 0..255, including NUL, DEL and high-bit bytes, at lengths that
  // straddle the 8/16-byte SWAR and SIMD block boundaries. This is the
  // guarantee that lets the hot path skip all validation: whatever the
  // scanners classify, the gap/word decomposition loses nothing.
  util::Rng rng(34);
  for (int trial = 0; trial < 600; ++trial) {
    std::string line;
    const int length = static_cast<int>(rng.Below(40));
    for (int i = 0; i < length; ++i) {
      line += static_cast<char>(rng.Below(256));
    }
    const LineTokens tokens = TokenizeLine(line);
    EXPECT_EQ(tokens.Render(), line);
    ASSERT_EQ(tokens.gaps.size(), tokens.words.size() + 1);
    // No word may contain a blank, no gap a non-blank.
    for (const std::string_view word : tokens.words) {
      EXPECT_EQ(word.find_first_of(" \t"), std::string_view::npos);
      EXPECT_FALSE(word.empty());
    }
    for (const std::string_view gap : tokens.gaps) {
      EXPECT_EQ(gap.find_first_not_of(" \t"), std::string_view::npos);
    }
  }
}

TEST(SegmentWord, ArbitraryByteConcatenationProperty) {
  // Segments must reassemble to the input for arbitrary bytes too —
  // the alpha classification only decides *where* the cuts land.
  util::Rng rng(35);
  for (int trial = 0; trial < 600; ++trial) {
    std::string word;
    const int length = static_cast<int>(rng.Below(24));
    for (int i = 0; i < length; ++i) {
      word += static_cast<char>(rng.Below(256));
    }
    std::string reassembled;
    bool last_alpha = false;
    bool first = true;
    for (const Segment& segment : SegmentWord(word)) {
      EXPECT_FALSE(segment.text.empty());
      if (!first) {
        EXPECT_NE(segment.alpha, last_alpha);  // strict alternation
      }
      first = false;
      last_alpha = segment.alpha;
      reassembled += segment.text;
    }
    EXPECT_EQ(reassembled, word);
  }
}

TEST(LineTokens, WordEditPreservesSpacing) {
  LineTokens tokens = TokenizeLine(" neighbor 2.2.2.2 remote-as  701");
  tokens.words[3] = "54651";
  EXPECT_EQ(tokens.Render(), " neighbor 2.2.2.2 remote-as  54651");
}

// --- document model ---

TEST(ConfigFile, FromTextSplitsLines) {
  const ConfigFile file = ConfigFile::FromText("r1", "a\nb\nc\n");
  EXPECT_EQ(file.name(), "r1");
  ASSERT_EQ(file.LineCount(), 3u);
  EXPECT_EQ(file.lines()[2], "c");
}

TEST(ConfigFile, FromTextHandlesCrLfAndNoTrailingNewline) {
  const ConfigFile file = ConfigFile::FromText("r1", "a\r\nb");
  ASSERT_EQ(file.LineCount(), 2u);
  EXPECT_EQ(file.lines()[0], "a");
  EXPECT_EQ(file.lines()[1], "b");
}

TEST(ConfigFile, ToTextRoundTrip) {
  const std::string text = "hostname r1\n!\ninterface Ethernet0\n";
  EXPECT_EQ(ConfigFile::FromText("r1", text).ToText(), text);
}

TEST(ConfigFile, EmptyText) {
  EXPECT_EQ(ConfigFile::FromText("r1", "").LineCount(), 0u);
}

TEST(BannerRegions, MultiLineBanner) {
  const ConfigFile file = ConfigFile::FromText("r1",
                                               "hostname r1\n"
                                               "banner motd ^C\n"
                                               "line one\n"
                                               "line two\n"
                                               "^C\n"
                                               "interface Ethernet0\n");
  const auto regions = FindBannerRegions(file);
  ASSERT_EQ(regions.size(), 1u);
  EXPECT_EQ(regions[0].begin, 1u);
  EXPECT_EQ(regions[0].end, 5u);  // includes the closing ^C line
}

TEST(BannerRegions, HashDelimiter) {
  const ConfigFile file = ConfigFile::FromText("r1",
                                               "banner login #\n"
                                               "keep out\n"
                                               "#\n"
                                               "end\n");
  const auto regions = FindBannerRegions(file);
  ASSERT_EQ(regions.size(), 1u);
  EXPECT_EQ(regions[0], (LineRegion{0, 3}));
}

TEST(BannerRegions, InlineSingleLineBanner) {
  const ConfigFile file =
      ConfigFile::FromText("r1", "banner motd #unauthorized#\nend\n");
  const auto regions = FindBannerRegions(file);
  ASSERT_EQ(regions.size(), 1u);
  EXPECT_EQ(regions[0], (LineRegion{0, 1}));
}

TEST(BannerRegions, UnterminatedExtendsToEof) {
  const ConfigFile file = ConfigFile::FromText("r1",
                                               "banner motd ^C\n"
                                               "text\n"
                                               "more text\n");
  const auto regions = FindBannerRegions(file);
  ASSERT_EQ(regions.size(), 1u);
  EXPECT_EQ(regions[0].end, 3u);
}

TEST(BannerRegions, MultipleBanners) {
  const ConfigFile file = ConfigFile::FromText("r1",
                                               "banner motd ^C\nx\n^C\n"
                                               "!\n"
                                               "banner exec #\ny\n#\n");
  const auto regions = FindBannerRegions(file);
  ASSERT_EQ(regions.size(), 2u);
  EXPECT_EQ(regions[0], (LineRegion{0, 3}));
  EXPECT_EQ(regions[1], (LineRegion{4, 7}));
}

TEST(BannerRegions, NoBanner) {
  const ConfigFile file =
      ConfigFile::FromText("r1", "hostname r1\ninterface Ethernet0\n");
  EXPECT_TRUE(FindBannerRegions(file).empty());
}

// --- dialect registry ---

TEST(Dialect, Deterministic) {
  const Dialect a = MakeDialect(17);
  const Dialect b = MakeDialect(17);
  EXPECT_EQ(a.version_string, b.version_string);
  EXPECT_EQ(a.interface_generation, b.interface_generation);
  EXPECT_EQ(a.emits_no_auto_summary, b.emits_no_auto_summary);
}

TEST(Dialect, ProducesManyDistinctVersions) {
  std::set<std::string> versions;
  for (std::uint32_t i = 0; i < 220; ++i) {
    versions.insert(MakeDialect(i).version_string);
  }
  // The paper's corpus spanned 200+ IOS versions; the registry must offer
  // comparable diversity.
  EXPECT_GE(versions.size(), 150u);
}

TEST(Dialect, QuirksVary) {
  bool saw_double_space = false, saw_classless = false, saw_gen2 = false;
  for (std::uint32_t i = 0; i < 220; ++i) {
    const Dialect d = MakeDialect(i);
    saw_double_space |= d.double_space_artifact;
    saw_classless |= d.emits_ip_classless;
    saw_gen2 |= d.interface_generation == 2;
  }
  EXPECT_TRUE(saw_double_space);
  EXPECT_TRUE(saw_classless);
  EXPECT_TRUE(saw_gen2);
}

}  // namespace
}  // namespace confanon::config
