// Property tests for the SWAR/SIMD character scanners.
//
// The scalar byte-at-a-time loops are the reference semantics; the SWAR
// path and whatever the top-level functions dispatch to (SSE2, NEON,
// SWAR or — under CONFANON_FORCE_SCALAR_TOKENIZER — scalar itself) must
// agree with them on EVERY input byte and EVERY starting position. The
// random corpus covers all 256 byte values, because the historic SWAR
// failure mode is a carry bleeding across byte lanes for values the
// ASCII-focused unit tests never exercise (0x80+, bytes adjacent to the
// classification boundaries).
#include "util/charscan.h"

#include <gtest/gtest.h>

#include <cctype>
#include <string>
#include <string_view>

#include "util/rng.h"

namespace confanon::util {
namespace {

TEST(CharScan, ImplNameIsKnown) {
  const std::string name = CharScanImplName();
  EXPECT_TRUE(name == "sse2" || name == "neon" || name == "swar" ||
              name == "scalar")
      << name;
#ifdef CONFANON_FORCE_SCALAR_TOKENIZER
  EXPECT_EQ(name, "scalar");
#endif
}

TEST(CharScan, ScalarReferenceSemantics) {
  // Pin the reference behavior itself before comparing others to it.
  EXPECT_EQ(scalar::FindBlank("abc def", 0), 3u);
  EXPECT_EQ(scalar::FindBlank("abc\tdef", 0), 3u);
  EXPECT_EQ(scalar::FindBlank("abcdef", 0), 6u);
  EXPECT_EQ(scalar::FindNonBlank("  \t x", 0), 4u);
  EXPECT_EQ(scalar::FindNonBlank("   ", 0), 3u);
  EXPECT_EQ(scalar::FindAlphaBoundary("abc123", 0, true), 3u);
  EXPECT_EQ(scalar::FindAlphaBoundary("123abc", 0, false), 3u);
  EXPECT_EQ(scalar::FindAlphaBoundary("abc", 0, true), 3u);
  // Position at or past the end comes straight back (no scan).
  EXPECT_EQ(scalar::FindBlank("ab", 2), 2u);
  EXPECT_EQ(scalar::FindBlank("ab", 5), 5u);
  EXPECT_EQ(scalar::FindBlank("", 0), 0u);
}

// Every byte value, one at a time: the classification of byte b must be
// identical across implementations.
TEST(CharScan, AllSingleBytesAgree) {
  for (int b = 0; b < 256; ++b) {
    const char c = static_cast<char>(b);
    const std::string one(1, c);
    EXPECT_EQ(swar::FindBlank(one, 0), scalar::FindBlank(one, 0)) << b;
    EXPECT_EQ(swar::FindNonBlank(one, 0), scalar::FindNonBlank(one, 0)) << b;
    EXPECT_EQ(swar::FindAlphaBoundary(one, 0, true),
              scalar::FindAlphaBoundary(one, 0, true))
        << b;
    EXPECT_EQ(swar::FindAlphaBoundary(one, 0, false),
              scalar::FindAlphaBoundary(one, 0, false))
        << b;
    EXPECT_EQ(FindBlank(one, 0), scalar::FindBlank(one, 0)) << b;
    EXPECT_EQ(FindNonBlank(one, 0), scalar::FindNonBlank(one, 0)) << b;
    EXPECT_EQ(FindAlphaBoundary(one, 0, true),
              scalar::FindAlphaBoundary(one, 0, true))
        << b;
    EXPECT_EQ(FindAlphaBoundary(one, 0, false),
              scalar::FindAlphaBoundary(one, 0, false))
        << b;
    // And against <cctype>: blanks are exactly space/tab, alpha is
    // exactly ASCII [A-Za-z].
    const bool blank = c == ' ' || c == '\t';
    const bool alpha = (b >= 'A' && b <= 'Z') || (b >= 'a' && b <= 'z');
    EXPECT_EQ(scalar::FindBlank(one, 0) == 0u, blank) << b;
    EXPECT_EQ(scalar::FindNonBlank(one, 0) == 0u, !blank) << b;
    EXPECT_EQ(scalar::FindAlphaBoundary(one, 0, false) == 0u, alpha) << b;
  }
}

// Boundary-adjacent bytes planted in every lane of an 8-byte block:
// '@'(0x40), '['(0x5B), '`'(0x60), '{'(0x7B) sit one off the alpha
// ranges; 0x80/0xC1/0xE1 are high-bit bytes whose low 7 bits LOOK
// alphabetic and must still classify as non-alpha.
TEST(CharScan, BoundaryBytesInEveryLane) {
  const char probes[] = {'@', '[', '`',  '{',  'A',  'Z',
                         'a', 'z', '\x7f', '\x80', '\xc1', '\xe1'};
  for (const char probe : probes) {
    for (std::size_t lane = 0; lane < 24; ++lane) {
      std::string text(24, 'x');
      text[lane] = probe;
      for (std::size_t pos = 0; pos <= text.size(); ++pos) {
        ASSERT_EQ(swar::FindAlphaBoundary(text, pos, true),
                  scalar::FindAlphaBoundary(text, pos, true))
            << static_cast<int>(probe) << " lane " << lane << " pos " << pos;
        ASSERT_EQ(FindAlphaBoundary(text, pos, true),
                  scalar::FindAlphaBoundary(text, pos, true))
            << static_cast<int>(probe) << " lane " << lane << " pos " << pos;
        ASSERT_EQ(swar::FindBlank(text, pos), scalar::FindBlank(text, pos));
        ASSERT_EQ(FindBlank(text, pos), scalar::FindBlank(text, pos));
      }
    }
  }
}

// Random byte strings, every starting position, all three scans: the
// SWAR and dispatched implementations must match the scalar reference
// exactly. Lengths 0..47 straddle the 8-byte SWAR and 16-byte SIMD
// block boundaries plus their unaligned heads and tails.
TEST(CharScan, RandomBytesPropertyAllPositions) {
  util::Rng rng(8086);
  for (int trial = 0; trial < 400; ++trial) {
    std::string text;
    const std::size_t length = rng.Below(48);
    for (std::size_t i = 0; i < length; ++i) {
      text += static_cast<char>(rng.Below(256));
    }
    // Seed extra blanks/alphas so boundaries actually occur often.
    for (std::size_t i = 0; i < length; ++i) {
      const std::uint64_t roll = rng.Below(8);
      if (roll == 0) text[i] = ' ';
      if (roll == 1) text[i] = '\t';
      if (roll == 2) text[i] = 'q';
    }
    const std::string_view view = text;
    for (std::size_t pos = 0; pos <= view.size() + 2; ++pos) {
      ASSERT_EQ(swar::FindBlank(view, pos), scalar::FindBlank(view, pos))
          << '"' << text << "\" pos " << pos;
      ASSERT_EQ(swar::FindNonBlank(view, pos), scalar::FindNonBlank(view, pos))
          << '"' << text << "\" pos " << pos;
      ASSERT_EQ(FindBlank(view, pos), scalar::FindBlank(view, pos))
          << '"' << text << "\" pos " << pos;
      ASSERT_EQ(FindNonBlank(view, pos), scalar::FindNonBlank(view, pos))
          << '"' << text << "\" pos " << pos;
      for (const bool alpha : {false, true}) {
        ASSERT_EQ(swar::FindAlphaBoundary(view, pos, alpha),
                  scalar::FindAlphaBoundary(view, pos, alpha))
            << '"' << text << "\" pos " << pos << " alpha " << alpha;
        ASSERT_EQ(FindAlphaBoundary(view, pos, alpha),
                  scalar::FindAlphaBoundary(view, pos, alpha))
            << '"' << text << "\" pos " << pos << " alpha " << alpha;
      }
    }
  }
}

// Unaligned starts: the same 64-byte buffer scanned from offsets 0..63
// must agree with the reference at every offset — the vector paths read
// aligned heads via an unaligned load, which is where off-by-ones live.
TEST(CharScan, UnalignedStartsAgree) {
  std::string text;
  util::Rng rng(4004);
  for (int i = 0; i < 64; ++i) {
    const char pool[] = " \taz@AZ[`{\x80~09";
    text += pool[rng.Below(sizeof(pool) - 1)];
  }
  for (std::size_t pos = 0; pos < text.size(); ++pos) {
    EXPECT_EQ(swar::FindBlank(text, pos), scalar::FindBlank(text, pos)) << pos;
    EXPECT_EQ(swar::FindNonBlank(text, pos), scalar::FindNonBlank(text, pos))
        << pos;
    EXPECT_EQ(swar::FindAlphaBoundary(text, pos, true),
              scalar::FindAlphaBoundary(text, pos, true))
        << pos;
    EXPECT_EQ(FindAlphaBoundary(text, pos, false),
              scalar::FindAlphaBoundary(text, pos, false))
        << pos;
  }
}

}  // namespace
}  // namespace confanon::util
