// Final coverage batch: characteristics of the newer config objects,
// mid-line description stripping, JunOS writer naming hygiene, and the
// CLI-facing known-entity format corner cases.
#include <gtest/gtest.h>

#include <sstream>

#include "analysis/characteristics.h"
#include "core/anonymizer.h"
#include "gen/network_gen.h"
#include "junos/writer.h"
#include "util/strings.h"

namespace confanon {
namespace {

config::ConfigFile File(std::string_view text) {
  return config::ConfigFile::FromText("r", text);
}

TEST(Characteristics, CountsPrefixListsAndStaticRoutes) {
  const auto configs = std::vector<config::ConfigFile>{File(R"(hostname r
ip prefix-list A seq 5 permit 10.0.0.0/24
ip prefix-list A seq 10 permit 10.0.1.0/24
ip route 10.9.0.0 255.255.0.0 10.0.0.2
ip route 10.8.0.0 255.255.0.0 10.0.0.2
ip route 10.7.0.0 255.255.0.0 10.0.0.2
)")};
  const analysis::NetworkCharacteristics stats =
      analysis::ExtractCharacteristics(configs);
  EXPECT_EQ(stats.prefix_list_entry_count, 2u);
  EXPECT_EQ(stats.static_route_count, 3u);
}

TEST(Characteristics, PreservedThroughAnonymizationForNewObjects) {
  core::AnonymizerOptions options;
  options.salt = "final-salt";
  core::Anonymizer anonymizer(std::move(options));
  const auto pre = std::vector<config::ConfigFile>{File(R"(hostname r
ip prefix-list ACME-out seq 5 permit 12.0.0.0/16 le 24
ip route 12.9.0.0 255.255.0.0 12.0.0.2
)")};
  const auto post = anonymizer.AnonymizeNetwork(pre);
  const auto a = analysis::ExtractCharacteristics(pre);
  const auto b = analysis::ExtractCharacteristics(post);
  EXPECT_EQ(a.prefix_list_entry_count, b.prefix_list_entry_count);
  EXPECT_EQ(a.static_route_count, b.static_route_count);
}

TEST(Anonymizer, MidLineDescriptionStripped) {
  core::AnonymizerOptions options;
  options.salt = "final-salt";
  core::Anonymizer anonymizer(std::move(options));
  const auto post = anonymizer.AnonymizeNetwork({File(
      "ip prefix-list X description routes for global crossing peering\n")});
  const std::string text = post.front().ToText();
  EXPECT_EQ(text.find("global"), std::string::npos);
  EXPECT_EQ(text.find("crossing"), std::string::npos);
  EXPECT_NE(text.find("description"), std::string::npos);
}

TEST(JunosWriter, SetCommunityNamesAreOpaque) {
  // Policy names must never embed the community value (that would leak
  // the original past the members rewriting).
  gen::GeneratorParams params;
  params.seed = 4242;
  params.router_count = 14;
  const auto network = gen::GenerateNetwork(params, 0);
  for (const auto& router : network.routers) {
    for (const auto& map : router.route_maps) {
      for (const auto& clause : map.clauses) {
        if (!clause.set_community) continue;
        const auto file = junos::WriteJunosConfig(router, network);
        const std::string text = file.ToText();
        // The literal appears only after "members".
        std::size_t at = 0;
        while ((at = text.find(*clause.set_community, at)) !=
               std::string::npos) {
          const std::size_t line_start = text.rfind('\n', at);
          const std::string line = text.substr(
              line_start + 1, text.find('\n', at) - line_start - 1);
          EXPECT_NE(line.find("members"), std::string::npos) << line;
          ++at;
        }
        return;  // one router with a set-community is enough
      }
    }
  }
  GTEST_SKIP() << "no set-community in sampled network";
}

TEST(KnownEntities, PrefixContainmentSurvivesForMembers) {
  // Declared-entity prefixes and addresses inside them keep containment
  // after anonymization (the property the Section 5 extension needs).
  core::AnonymizerOptions options;
  options.salt = "entity-containment";
  core::AnonymizerOptions::KnownEntity entity;
  entity.asns = {701};
  entity.prefixes = {*net::Prefix::Parse("157.130.0.0/16")};
  options.known_entities.push_back(entity);
  core::Anonymizer anonymizer(options);
  anonymizer.AnonymizeNetwork({File(
      "router bgp 65000\n"
      " neighbor 157.130.4.9 remote-as 701\n"
      " neighbor 157.130.77.2 remote-as 701\n")});
  std::ostringstream out;
  anonymizer.ExportKnownEntities(out);
  const std::string text = out.str();
  const std::size_t prefixes_at = text.find("prefixes ");
  ASSERT_NE(prefixes_at, std::string::npos);
  const auto exported = net::Prefix::Parse(
      util::Trim(text.substr(prefixes_at + 9)));
  ASSERT_TRUE(exported.has_value()) << text;
  for (const char* member : {"157.130.4.9", "157.130.77.2"}) {
    EXPECT_TRUE(exported->Contains(
        anonymizer.ip_anonymizer().Map(*net::Ipv4Address::Parse(member))))
        << member;
  }
}

}  // namespace
}  // namespace confanon
