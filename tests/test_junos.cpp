#include <gtest/gtest.h>

#include <sstream>

#include "core/anonymizer.h"
#include "gen/config_writer.h"
#include "gen/network_gen.h"
#include "junos/anonymizer.h"
#include "junos/tokenizer.h"
#include "junos/writer.h"
#include "util/rng.h"

namespace confanon::junos {
namespace {

// --- tokenizer ---

TEST(JunosTokenizer, SplitsPunctuation) {
  const JunosLine line = TokenizeJunosLine("    peer-as 701;");
  ASSERT_EQ(line.tokens.size(), 3u);
  EXPECT_EQ(line.tokens[0].text, "peer-as");
  EXPECT_EQ(line.tokens[1].text, "701");
  EXPECT_EQ(line.tokens[2].kind, Token::Kind::kPunct);
  EXPECT_EQ(line.tokens[2].text, ";");
}

TEST(JunosTokenizer, BracesAndBrackets) {
  const JunosLine line =
      TokenizeJunosLine("community c members [ 701:120 702:9 ];");
  std::vector<std::string> punct;
  for (const Token& token : line.tokens) {
    if (token.kind == Token::Kind::kPunct) punct.emplace_back(token.text);
  }
  EXPECT_EQ(punct, (std::vector<std::string>{"[", "]", ";"}));
}

TEST(JunosTokenizer, QuotedStrings) {
  const JunosLine line =
      TokenizeJunosLine("as-path foo \"(_701_|_1239_)\";");
  ASSERT_EQ(line.tokens.size(), 4u);
  EXPECT_EQ(line.tokens[2].kind, Token::Kind::kString);
  EXPECT_EQ(line.tokens[2].text, "\"(_701_|_1239_)\"");
  const auto words = WordsOf(line);
  ASSERT_EQ(words.size(), 3u);
  EXPECT_EQ(words[2], "(_701_|_1239_)");  // unquoted
}

TEST(JunosTokenizer, HashComment) {
  const JunosLine line = TokenizeJunosLine("neighbor 1.2.3.4; # to acme");
  EXPECT_EQ(line.tokens.back().kind, Token::Kind::kComment);
  EXPECT_EQ(line.tokens.back().text, "# to acme");
}

TEST(JunosTokenizer, RenderRoundTripExact) {
  for (const char* text :
       {"", "    }", "a { b; }", "x \"quoted str\" ;  # tail",
        "  address 1.2.3.4/30;", "\tmessage \"two  spaces\";",
        "unterminated \"quote"}) {
    EXPECT_EQ(TokenizeJunosLine(text).Render(), text) << '"' << text << '"';
  }
}

TEST(JunosTokenizer, RandomRoundTripProperty) {
  util::Rng rng(9157);
  const char alphabet[] = "ab1{};[]\"# ./";
  for (int trial = 0; trial < 300; ++trial) {
    std::string text;
    const int length = static_cast<int>(rng.Below(28));
    for (int i = 0; i < length; ++i) {
      text += alphabet[static_cast<std::size_t>(rng.Below(13))];
    }
    EXPECT_EQ(TokenizeJunosLine(text).Render(), text) << text;
  }
}

// --- interface name mapping ---

TEST(JunosWriter, InterfaceNames) {
  EXPECT_EQ(JunosInterfaceName("Serial1/0"), "so-1/0");
  EXPECT_EQ(JunosInterfaceName("Serial1/0.5"), "so-1/0.5");
  EXPECT_EQ(JunosInterfaceName("FastEthernet0/1"), "fe-0/1");
  EXPECT_EQ(JunosInterfaceName("GigabitEthernet0/2"), "ge-0/2");
  EXPECT_EQ(JunosInterfaceName("Ethernet3"), "ge-0/3");
  EXPECT_EQ(JunosInterfaceName("Loopback0"), "lo0");
}

// --- writer ---

gen::NetworkSpec SampleNetwork() {
  gen::GeneratorParams params;
  params.seed = 77;
  params.router_count = 12;
  params.p_community_regex = 1.0;
  params.p_alternation_regex = 1.0;
  return gen::GenerateNetwork(params, 0);
}

TEST(JunosWriter, BalancedBraces) {
  const auto network = SampleNetwork();
  for (const auto& file : WriteJunosNetworkConfigs(network)) {
    int depth = 0;
    for (const std::string_view raw : file.lines()) {
      for (char c : raw) {
        if (c == '{') ++depth;
        if (c == '}') --depth;
        ASSERT_GE(depth, 0) << file.name() << ": " << raw;
      }
    }
    EXPECT_EQ(depth, 0) << file.name();
  }
}

TEST(JunosWriter, ContainsCoreStatements) {
  const auto network = SampleNetwork();
  const auto configs = WriteJunosNetworkConfigs(network);
  bool saw_bgp = false, saw_policy = false, saw_address = false;
  for (const auto& file : configs) {
    const std::string text = file.ToText();
    saw_bgp |= text.find("peer-as ") != std::string::npos;
    saw_policy |= text.find("policy-statement ") != std::string::npos;
    saw_address |= text.find("family inet") != std::string::npos;
  }
  EXPECT_TRUE(saw_bgp);
  EXPECT_TRUE(saw_policy);
  EXPECT_TRUE(saw_address);
}

// --- anonymizer ---

config::ConfigFile File(std::string_view text) {
  return config::ConfigFile::FromText("router", text);
}

std::string Anonymize(std::string_view text) {
  JunosAnonymizerOptions options;
  options.salt = "junos-salt";
  JunosAnonymizer anonymizer(std::move(options));
  return anonymizer.AnonymizeNetwork({File(text)}).front().ToText();
}

TEST(JunosAnonymizer, HostNameHashed) {
  const std::string out =
      Anonymize("system {\n    host-name cr1.lax.foo.com;\n}\n");
  EXPECT_EQ(out.find("foo"), std::string::npos);
  EXPECT_NE(out.find("host-name h"), std::string::npos);
  EXPECT_NE(out.find(";"), std::string::npos);
}

TEST(JunosAnonymizer, BlockCommentsStripped) {
  const std::string out = Anonymize("/* acme core router lax */\nsystem {\n}\n");
  EXPECT_EQ(out.find("acme"), std::string::npos);
  EXPECT_EQ(out.find("lax"), std::string::npos);
}

TEST(JunosAnonymizer, MultiLineBlockComment) {
  const std::string out = Anonymize(
      "/* contact noc@acme.com\n   phone 555 0100 */\nsystem {\n}\n");
  EXPECT_EQ(out.find("acme"), std::string::npos);
  EXPECT_EQ(out.find("555"), std::string::npos);
  EXPECT_NE(out.find("system"), std::string::npos);
}

TEST(JunosAnonymizer, HashCommentStripped) {
  const std::string out =
      Anonymize("neighbor 4.4.4.4; # session to sprintlink\n");
  EXPECT_EQ(out.find("sprintlink"), std::string::npos);
  EXPECT_EQ(out.find("#"), std::string::npos);
}

TEST(JunosAnonymizer, DescriptionStringStripped) {
  const std::string out =
      Anonymize("description \"Foo Corp LAX office uplink\";\n");
  EXPECT_EQ(out.find("Foo"), std::string::npos);
  EXPECT_NE(out.find("description \"\""), std::string::npos);
}

TEST(JunosAnonymizer, PeerAsMapped) {
  JunosAnonymizerOptions options;
  options.salt = "junos-salt";
  JunosAnonymizer anonymizer(std::move(options));
  const auto out =
      anonymizer.AnonymizeNetwork({File("peer-as 701;\n")});
  EXPECT_EQ(out.front().ToText(),
            "peer-as " + std::to_string(anonymizer.asn_map().Map(701)) +
                ";\n");
}

TEST(JunosAnonymizer, PrivateAsnUntouched) {
  EXPECT_EQ(Anonymize("autonomous-system 65001;\n"),
            "autonomous-system 65001;\n");
}

TEST(JunosAnonymizer, CidrAddressMappedLengthKept) {
  const std::string out =
      Anonymize("address 12.34.56.1/30;\n");
  EXPECT_EQ(out.find("12.34.56.1"), std::string::npos);
  EXPECT_NE(out.find("/30;"), std::string::npos);
}

TEST(JunosAnonymizer, AsPathRegexRewritten) {
  JunosAnonymizerOptions options;
  options.salt = "junos-salt";
  JunosAnonymizer anonymizer(std::move(options));
  const auto out = anonymizer.AnonymizeNetwork(
      {File("as-path peer-in \"(_1239_|_70[2-5]_)\";\n")});
  const std::string text = out.front().ToText();
  EXPECT_EQ(text.find("1239"), std::string::npos);
  for (std::uint32_t asn : {1239u, 702u, 705u}) {
    EXPECT_NE(text.find(std::to_string(anonymizer.asn_map().Map(asn))),
              std::string::npos);
  }
}

TEST(JunosAnonymizer, AsPathReferenceNotTreatedAsRegex) {
  // `from { as-path peer-in; }` carries no quoted pattern; the name is
  // hashed consistently with its definition.
  JunosAnonymizerOptions options;
  options.salt = "junos-salt";
  JunosAnonymizer anonymizer(std::move(options));
  const auto out = anonymizer.AnonymizeNetwork({File(
      "as-path acme-in \"_701_\";\nfrom {\n    as-path acme-in;\n}\n")});
  const std::string hashed = anonymizer.string_hasher().Hash("acme-in");
  const std::string text = out.front().ToText();
  EXPECT_EQ(text.find("acme-in"), std::string::npos);
  EXPECT_NE(text.find("as-path " + hashed + " \""), std::string::npos);
  EXPECT_NE(text.find("as-path " + hashed + ";"), std::string::npos);
}

TEST(JunosAnonymizer, CommunityMembersLiteralsMapped) {
  JunosAnonymizerOptions options;
  options.salt = "junos-salt";
  JunosAnonymizer anonymizer(std::move(options));
  const auto out = anonymizer.AnonymizeNetwork(
      {File("community acme-comm members [ 701:120 702:9 ];\n")});
  const std::string text = out.front().ToText();
  EXPECT_EQ(text.find("701:120"), std::string::npos);
  const std::string expected =
      std::to_string(anonymizer.asn_map().Map(701)) + ":";
  EXPECT_NE(text.find(expected), std::string::npos);
  EXPECT_NE(text.find("[ "), std::string::npos);
}

TEST(JunosAnonymizer, CommunityRegexRewritten) {
  const std::string out =
      Anonymize("community c members \"701:7[1-5]..\";\n");
  EXPECT_EQ(out.find("701:"), std::string::npos);
}

TEST(JunosAnonymizer, AsPathPrependMapped) {
  JunosAnonymizerOptions options;
  options.salt = "junos-salt";
  JunosAnonymizer anonymizer(std::move(options));
  const auto out = anonymizer.AnonymizeNetwork(
      {File("as-path-prepend \"701 701\";\n")});
  const std::string mapped = std::to_string(anonymizer.asn_map().Map(701));
  EXPECT_NE(out.front().ToText().find("\"" + mapped + " " + mapped + "\""),
            std::string::npos);
}

TEST(JunosAnonymizer, InlineMultiStatementLinesHandled) {
  // JunOS statements can share a line; context rules must not be anchored
  // to the line head.
  JunosAnonymizerOptions options;
  options.salt = "junos-salt";
  JunosAnonymizer anonymizer(std::move(options));
  const auto out = anonymizer.AnonymizeNetwork({File(
      "group ext { peer-as 701; neighbor 4.4.4.4; description \"acme\"; }\n")});
  const std::string text = out.front().ToText();
  EXPECT_EQ(text.find("peer-as 701"), std::string::npos);
  EXPECT_NE(
      text.find("peer-as " + std::to_string(anonymizer.asn_map().Map(701))),
      std::string::npos);
  EXPECT_EQ(text.find("4.4.4.4"), std::string::npos);
  EXPECT_EQ(text.find("acme"), std::string::npos);
}

TEST(JunosAnonymizer, StructurePreservedEndToEnd) {
  // Full generated network in JunOS syntax: brace structure and line
  // count survive; no company name survives; leak grep clean.
  const auto network = SampleNetwork();
  const auto pre = WriteJunosNetworkConfigs(network);
  JunosAnonymizerOptions options;
  options.salt = "junos-e2e";
  JunosAnonymizer anonymizer(std::move(options));
  const auto post = anonymizer.AnonymizeNetwork(pre);
  ASSERT_EQ(post.size(), pre.size());
  for (std::size_t i = 0; i < pre.size(); ++i) {
    EXPECT_EQ(post[i].LineCount(), pre[i].LineCount());
    int depth = 0;
    for (const std::string_view raw : post[i].lines()) {
      for (char c : raw) {
        if (c == '{') ++depth;
        if (c == '}') --depth;
      }
    }
    EXPECT_EQ(depth, 0);
    EXPECT_EQ(post[i].ToText().find(network.name), std::string::npos);
  }
  const auto findings =
      core::LeakDetector::Scan(post, anonymizer.leak_record());
  for (const auto& finding : findings) {
    EXPECT_EQ(finding.kind, core::LeakFinding::Kind::kAsn)
        << finding.matched << " in " << finding.line;
  }
}

TEST(JunosAnonymizer, CrossLanguageConsistencyWithIos) {
  // The paper's portability claim, sharpened: the same network rendered
  // in IOS and JunOS, anonymized with the same salt, maps identifiers and
  // ASNs identically (those maps are pure functions of the salt). The IP
  // trie is a shared *data structure* — exactly why the paper contrasts
  // Minshall's scheme with Xu's stateless one — so cross-corpus address
  // consistency uses the supported mechanism: exporting one run's
  // mappings into the other.
  const auto network = SampleNetwork();
  const auto ios = gen::WriteNetworkConfigs(network);
  const auto junos_files = WriteJunosNetworkConfigs(network);

  core::AnonymizerOptions ios_options;
  ios_options.salt = "shared-salt";
  core::Anonymizer ios_anonymizer(std::move(ios_options));
  ios_anonymizer.AnonymizeNetwork(ios);

  JunosAnonymizerOptions junos_options;
  junos_options.salt = "shared-salt";
  JunosAnonymizer junos_anonymizer(std::move(junos_options));
  // Import the IOS run's IP mapping before anonymizing the JunOS corpus.
  std::stringstream mapping;
  ios_anonymizer.ip_anonymizer().ExportMappings(mapping);
  junos_anonymizer.ip_anonymizer().ImportMappings(mapping);
  junos_anonymizer.AnonymizeNetwork(junos_files);

  // ASN permutations agree (same salt).
  for (std::uint32_t asn : {701u, 1239u, network.asn}) {
    EXPECT_EQ(ios_anonymizer.asn_map().Map(asn),
              junos_anonymizer.asn_map().Map(asn));
  }
  // Hash tokens agree for shared identifiers.
  EXPECT_EQ(ios_anonymizer.string_hasher().Hash("UUNET-import"),
            junos_anonymizer.string_hasher().Hash("UUNET-import"));
  // With the imported mapping, addresses agree everywhere.
  for (const auto& router : network.routers) {
    for (const auto& iface : router.interfaces) {
      EXPECT_EQ(ios_anonymizer.ip_anonymizer().Map(iface.address),
                junos_anonymizer.ip_anonymizer().Map(iface.address));
    }
  }
}

}  // namespace
}  // namespace confanon::junos
