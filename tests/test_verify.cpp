// The static policy verifier's contract (docs/VERIFY.md): a clean
// verdict on the builtin policies, one finding per seeded contradiction,
// and — the load-bearing bit — every VER-001 witness string, fed through
// the REAL anonymizer, actually leaks. The file-name channel is the
// demonstration vehicle: core::Anonymizer passes a file name verbatim
// iff the whole name is pass-listed, so a witness-named file keeps its
// name under the bad policy and is hashed under the builtin one.
#include <gtest/gtest.h>

#include <cctype>
#include <string>
#include <string_view>
#include <vector>

#include "audit/finding.h"
#include "audit/sarif.h"
#include "config/document.h"
#include "core/anonymizer.h"
#include "core/session.h"
#include "pipeline/pipeline.h"
#include "verify/policy.h"
#include "verify/recognizer.h"
#include "verify/verify.h"

namespace confanon {
namespace {

using audit::AuditResult;
using audit::Finding;
using audit::Severity;

/// Options with one extra pass-list token on top of the builtins — the
/// daemon's per-tenant shape, and the smallest seeded contradiction.
core::AnonymizerOptions WithExtra(std::string_view token) {
  core::AnonymizerOptions options;
  options.extra_pass_list.Add(token);
  return options;
}

/// The findings with `rule_id`, in report order.
std::vector<const Finding*> FindAll(const AuditResult& result,
                                    std::string_view rule_id) {
  std::vector<const Finding*> out;
  for (const Finding& finding : result.findings) {
    if (finding.rule_id == rule_id) out.push_back(&finding);
  }
  return out;
}

/// Extracts the quoted witness from a VER-001 message ("shortest witness
/// of the intersection: '...'").
std::string WitnessOf(const Finding& finding) {
  const std::string_view marker = "shortest witness of the intersection: '";
  const std::size_t start = finding.message.find(marker);
  if (start == std::string::npos) return {};
  const std::size_t from = start + marker.size();
  const std::size_t end = finding.message.find('\'', from);
  if (end == std::string::npos) return {};
  return finding.message.substr(from, end - from);
}

/// The file-name the real anonymizer emits for a file named `name` under
/// `options` — the whole-identifier pass-list channel VER-001 is about.
std::string AnonymizedName(const core::AnonymizerOptions& options,
                           const std::string& name) {
  core::Anonymizer engine(options);
  return engine.AnonymizeFile(config::ConfigFile(name, {"interface x"}))
      .name();
}

/// Asserts the witness leaks under `bad` (name survives verbatim) and
/// does NOT leak under the builtin policy (name is hashed) — i.e. the
/// verifier's proof corresponds to a real end-to-end behavior.
void ExpectWitnessLeaks(const core::AnonymizerOptions& bad,
                        const std::string& witness) {
  ASSERT_FALSE(witness.empty());
  core::AnonymizerOptions salted_bad = bad;
  salted_bad.salt = "witness-check";
  EXPECT_EQ(AnonymizedName(salted_bad, witness), witness)
      << "witness '" << witness << "' should survive the bad policy";
  core::AnonymizerOptions builtin;
  builtin.salt = "witness-check";
  EXPECT_NE(AnonymizedName(builtin, witness), witness)
      << "witness '" << witness << "' should hash under the builtin policy";
}

// --- clean baselines ----------------------------------------------------

TEST(VerifyPolicy, BuiltinPoliciesAreClean) {
  const AuditResult result = verify::VerifyEngineOptions({});
  EXPECT_TRUE(result.findings.empty()) << result.ToText();
  EXPECT_GT(result.stats.at("verify.entries"), 1000u);
  EXPECT_GT(result.stats.at("verify.dfa_states"), 0u);
  const core::PolicyVerdict verdict = verify::VerdictOf(result);
  EXPECT_TRUE(verdict.verified);
  EXPECT_TRUE(verdict.Clean());
  EXPECT_EQ(verdict.notes, 0u);
}

TEST(VerifyPolicy, BothDialectsModeledAndClean) {
  const verify::PolicySpec spec = verify::BuiltinPolicy();
  ASSERT_EQ(spec.dialects.size(), 2u);
  EXPECT_EQ(spec.dialects[0].dialect, verify::Dialect::kIos);
  EXPECT_EQ(spec.dialects[1].dialect, verify::Dialect::kJunos);
  // Every builtin entry is baseline — nothing custom to flag.
  for (const verify::DialectPolicy& policy : spec.dialects) {
    EXPECT_EQ(policy.baseline_count, policy.entries.size());
  }
  EXPECT_TRUE(verify::VerifyPolicy(spec).findings.empty());
}

// --- seeded contradictions: one per sensitive recognizer ----------------

TEST(VerifyPolicy, Ipv4EntryYieldsLeakWitness) {
  const core::AnonymizerOptions bad = WithExtra("10.0.0.1");
  const AuditResult result = verify::VerifyEngineOptions(bad);
  const auto findings = FindAll(result, "VER-001");
  // Both dialects inherit the extras, so both report the channel.
  ASSERT_EQ(findings.size(), 2u) << result.ToText();
  for (const Finding* finding : findings) {
    EXPECT_EQ(finding->severity, Severity::kError);
    EXPECT_NE(finding->message.find("ipv4-literal"), std::string::npos);
  }
  ExpectWitnessLeaks(bad, WitnessOf(*findings.front()));
}

TEST(VerifyPolicy, PublicAsnEntryYieldsLeakWitness) {
  const core::AnonymizerOptions bad = WithExtra("64000");
  const AuditResult result = verify::VerifyEngineOptions(bad);
  const auto findings = FindAll(result, "VER-001");
  ASSERT_FALSE(findings.empty()) << result.ToText();
  EXPECT_NE(findings.front()->message.find("asn-public-literal"),
            std::string::npos);
  ExpectWitnessLeaks(bad, WitnessOf(*findings.front()));
}

TEST(VerifyPolicy, CommunityEntryYieldsLeakWitness) {
  const core::AnonymizerOptions bad = WithExtra("64496:100");
  const AuditResult result = verify::VerifyEngineOptions(bad);
  const auto findings = FindAll(result, "VER-001");
  ASSERT_FALSE(findings.empty()) << result.ToText();
  EXPECT_NE(findings.front()->message.find("community-literal"),
            std::string::npos);
  ExpectWitnessLeaks(bad, WitnessOf(*findings.front()));
}

TEST(VerifyPolicy, HashShapedEntryYieldsLeakWitness) {
  // An entry shaped like the engine's own output ("h" + 10 hex digits)
  // would let a forged mapping ride through verbatim.
  const core::AnonymizerOptions bad = WithExtra("h0123456789");
  const AuditResult result = verify::VerifyEngineOptions(bad);
  const auto findings = FindAll(result, "VER-001");
  ASSERT_FALSE(findings.empty()) << result.ToText();
  EXPECT_NE(findings.front()->message.find("hash-token"), std::string::npos);
  ExpectWitnessLeaks(bad, WitnessOf(*findings.front()));
}

TEST(VerifyPolicy, SpecialAddressesAreExemptFromIpv4Findings) {
  // Netmasks/wildcards pass through legitimately under rule I2; listing
  // one is redundant but not a leak channel.
  const AuditResult result =
      verify::VerifyEngineOptions(WithExtra("255.255.255.0"));
  EXPECT_TRUE(FindAll(result, "VER-001").empty()) << result.ToText();
}

// --- reachability / shadowing -------------------------------------------

TEST(VerifyPolicy, DeadNonAlphaEntryReported) {
  // T1 segmentation only ever tests alphabetic runs, so "loopback0" can
  // never match a word; the entry is live only for whole-identifier
  // exemptions.
  const AuditResult result =
      verify::VerifyEngineOptions(WithExtra("loopback0"));
  const auto findings = FindAll(result, "VER-002");
  ASSERT_FALSE(findings.empty()) << result.ToText();
  EXPECT_EQ(findings.front()->severity, Severity::kWarning);
  EXPECT_NE(findings.front()->message.find("loopback0"), std::string::npos);
}

TEST(VerifyPolicy, ShadowedEntryAnchorsBothLoads) {
  // "loopback" is already in the builtin corpus; the tenant's re-add is
  // inert and the finding points back at the first load.
  const AuditResult result =
      verify::VerifyEngineOptions(WithExtra("loopback"));
  const auto findings = FindAll(result, "VER-003");
  ASSERT_FALSE(findings.empty()) << result.ToText();
  const Finding& finding = *findings.front();
  EXPECT_EQ(finding.severity, Severity::kWarning);
  EXPECT_EQ(finding.anchor.file, verify::kOriginExtra);
  EXPECT_NE(finding.message.find(verify::kOriginBuiltin), std::string::npos);
}

TEST(VerifyPolicy, CrossDialectConflictReported) {
  // Replacing the IOS pass-list outright (not extending it) leaves the
  // JunOS engine — which ignores options.pass_list — without the custom
  // token: passed in IOS, hashed in JunOS.
  core::AnonymizerOptions options;
  options.pass_list.Add("zephyrix");
  const AuditResult result = verify::VerifyEngineOptions(options);
  const auto findings = FindAll(result, "VER-004");
  ASSERT_EQ(findings.size(), 1u) << result.ToText();
  EXPECT_NE(findings.front()->message.find("zephyrix"), std::string::npos);
  EXPECT_NE(findings.front()->message.find("junos"), std::string::npos);
}

// --- taint closure over the disable surface ----------------------------

TEST(VerifyPolicy, DisablingWordHashUncoversEverySymbolSpace) {
  core::AnonymizerOptions options;
  options.disabled_rules.insert(core::rules::kPasslistHash);
  const AuditResult result = verify::VerifyEngineOptions(options);
  const auto findings = FindAll(result, "VER-005");
  // Nine refgraph symbol spaces, IOS only (JunOS has no disable surface).
  EXPECT_EQ(findings.size(), 9u) << result.ToText();
  for (const Finding* finding : findings) {
    EXPECT_EQ(finding->severity, Severity::kError);
  }
}

TEST(VerifyPolicy, DisabledTransformRuleMapsToValueClass) {
  core::AnonymizerOptions options;
  options.disabled_rules.insert(core::rules::kSnmpStrings);
  const AuditResult result = verify::VerifyEngineOptions(options);
  const auto findings = FindAll(result, "VER-006");
  ASSERT_EQ(findings.size(), 1u) << result.ToText();
  EXPECT_EQ(findings.front()->severity, Severity::kError);
  EXPECT_NE(findings.front()->message.find("SNMP"), std::string::npos);
}

TEST(VerifyPolicy, UnknownDisabledRuleNameIsFlagged) {
  core::AnonymizerOptions options;
  options.disabled_rules.insert("M9.no-such-rule");
  const AuditResult result = verify::VerifyEngineOptions(options);
  const auto findings = FindAll(result, "VER-007");
  ASSERT_EQ(findings.size(), 1u) << result.ToText();
  EXPECT_EQ(findings.front()->severity, Severity::kWarning);
}

// --- SARIF --------------------------------------------------------------

TEST(VerifySarif, FindingsFlowThroughTheSharedEmitter) {
  const AuditResult result =
      verify::VerifyEngineOptions(WithExtra("10.0.0.1"));
  ASSERT_FALSE(result.findings.empty());
  const std::string sarif = audit::ToSarif(result);
  EXPECT_NE(sarif.find("\"VER-001\""), std::string::npos);
  EXPECT_NE(sarif.find("\"2.1.0\""), std::string::npos);
  // Balanced structure (the full JSON grammar is covered by the audit
  // suite's checker; the verifier reuses that emitter verbatim).
  std::ptrdiff_t depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < sarif.size(); ++i) {
    const char c = sarif[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    else if (c == '{' || c == '[') ++depth;
    else if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
  // The VER-* catalogue rides along in the driver descriptor.
  for (const char* id :
       {"VER-001", "VER-002", "VER-003", "VER-004", "VER-005", "VER-006",
        "VER-007"}) {
    EXPECT_NE(sarif.find(id), std::string::npos) << id;
  }
}

// --- the ServiceContext gate --------------------------------------------

TEST(PolicyGate, LeakyPolicyRefusesSessionCreation) {
  core::ServiceOptions options;
  options.base.salt = "gate";
  options.base.extra_pass_list.Add("10.0.0.1");
  const auto context = pipeline::MakeServiceContext(std::move(options));
  EXPECT_GT(context->policy_verdict().errors, 0u);
  EXPECT_THROW((void)context->CreateSession(), core::PolicyError);
  try {
    (void)context->CreateSession();
  } catch (const core::PolicyError& error) {
    EXPECT_NE(std::string(error.what()).find("VER-001"), std::string::npos);
    EXPECT_GT(error.verdict().errors, 0u);
  }
}

TEST(PolicyGate, WarningsGateUnlessAllowed) {
  core::ServiceOptions options;
  options.base.salt = "gate";
  options.base.extra_pass_list.Add("loopback0");  // VER-002 warning
  {
    core::ServiceOptions strict = options;
    const auto context = pipeline::MakeServiceContext(std::move(strict));
    EXPECT_THROW((void)context->CreateSession(), core::PolicyError);
  }
  {
    core::ServiceOptions relaxed = options;
    relaxed.allow_policy_warnings = true;
    const auto context = pipeline::MakeServiceContext(std::move(relaxed));
    EXPECT_NO_THROW((void)context->CreateSession());
  }
}

TEST(PolicyGate, UnverifiedContextGatesNothing) {
  core::ServiceOptions options;
  options.base.salt = "gate";
  options.base.extra_pass_list.Add("10.0.0.1");
  options.verify_policy = false;
  const auto context = pipeline::MakeServiceContext(std::move(options));
  EXPECT_FALSE(context->policy_verdict().verified);
  EXPECT_NO_THROW((void)context->CreateSession());
}

TEST(PolicyGate, SessionExtrasAreImmutableAfterFirstRequest) {
  core::ServiceOptions options;
  options.base.salt = "gate";
  const auto context = pipeline::MakeServiceContext(std::move(options));
  const auto session = context->CreateSession();

  passlist::PassList extras;
  extras.Add("zephyrix");
  session->SetExtraPassList(std::move(extras));

  // The session's extras reach the engines built over it.
  pipeline::CorpusPipeline pipeline(context, session);
  const auto out = pipeline.AnonymizeCorpus(
      {config::ConfigFile("r1", {"interface zephyrix"})});
  session->MergeRequest(core::AnonymizationReport{}, core::LeakRecord{});
  EXPECT_NE(out.front().lines()[0].find("zephyrix"), std::string::npos);

  passlist::PassList late;
  late.Add("quorvane");
  EXPECT_THROW(session->SetExtraPassList(std::move(late)), std::logic_error);
}

}  // namespace
}  // namespace confanon
