// Tests for the observability subsystem (src/obs/) and its integration
// with the anonymizers: JSON writer, metrics registry + histograms,
// trace sink framing, provenance log, and the metrics == report
// consistency guarantee.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "config/document.h"
#include "core/anonymizer.h"
#include "core/leak_detector.h"
#include "junos/anonymizer.h"
#include "obs/hooks.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/provenance.h"
#include "obs/trace.h"

namespace confanon {
namespace {

// --- JSON writer -------------------------------------------------------

TEST(JsonWriter, EscapesStrings) {
  EXPECT_EQ(obs::JsonQuote("plain"), "\"plain\"");
  EXPECT_EQ(obs::JsonQuote("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(obs::JsonQuote("a\\b"), "\"a\\\\b\"");
  EXPECT_EQ(obs::JsonQuote("a\nb\tc"), "\"a\\nb\\tc\"");
  EXPECT_EQ(obs::JsonQuote(std::string_view("\x01", 1)), "\"\\u0001\"");
}

TEST(JsonWriter, NestedStructures) {
  obs::JsonWriter out;
  out.BeginObject();
  out.Key("n").Value(std::uint64_t{42});
  out.Key("s").Value("hi");
  out.Key("f").Value(true);
  out.Key("list").BeginArray();
  out.Value(std::int64_t{-1});
  out.Null();
  out.EndArray();
  out.Key("inner").BeginObject();
  out.EndObject();
  out.EndObject();
  EXPECT_EQ(out.str(),
            "{\"n\":42,\"s\":\"hi\",\"f\":true,"
            "\"list\":[-1,null],\"inner\":{}}");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  obs::JsonWriter out;
  out.BeginArray();
  out.Value(1.5);
  out.Value(std::numeric_limits<double>::infinity());
  out.EndArray();
  EXPECT_EQ(out.str(), "[1.5,null]");
}

// --- Latency histogram -------------------------------------------------

TEST(LatencyHistogram, BucketLayout) {
  // Small values get exact buckets.
  for (std::uint64_t v = 0; v < 8; ++v) {
    EXPECT_EQ(obs::LatencyHistogram::BucketIndex(v), static_cast<int>(v));
    EXPECT_EQ(obs::LatencyHistogram::BucketLowerBound(static_cast<int>(v)), v);
  }
  // BucketLowerBound is a left inverse of BucketIndex and strictly
  // increasing across the reachable range (the top bucket holds every
  // value whose MSB is bit 63, so indices above it are never produced).
  const int top = obs::LatencyHistogram::BucketIndex(~std::uint64_t{0});
  EXPECT_LT(top, obs::LatencyHistogram::kBucketCount);
  std::uint64_t prev = 0;
  for (int i = 1; i <= top; ++i) {
    const std::uint64_t bound = obs::LatencyHistogram::BucketLowerBound(i);
    EXPECT_GT(bound, prev) << "bucket " << i;
    EXPECT_EQ(obs::LatencyHistogram::BucketIndex(bound), i) << "bucket " << i;
    prev = bound;
  }
}

TEST(LatencyHistogram, PercentilesOnUniformDistribution) {
  obs::LatencyHistogram histogram;
  for (std::uint64_t v = 1; v <= 1000; ++v) histogram.Record(v);
  const obs::HistogramSnapshot snap = histogram.Snapshot();
  EXPECT_EQ(snap.count, 1000u);
  EXPECT_EQ(snap.sum, 500500u);
  EXPECT_EQ(snap.min, 1u);
  EXPECT_EQ(snap.max, 1000u);
  EXPECT_DOUBLE_EQ(snap.Mean(), 500.5);
  // Log-bucket relative error is bounded by the sub-bucket width (12.5%).
  EXPECT_NEAR(snap.Percentile(50), 500.0, 500.0 * 0.125);
  EXPECT_NEAR(snap.Percentile(95), 950.0, 950.0 * 0.125);
  EXPECT_NEAR(snap.Percentile(99), 990.0, 990.0 * 0.125);
  // The top clamps to the observed max exactly; the bottom is within one
  // bucket width of the observed min.
  EXPECT_NEAR(snap.Percentile(0), 1.0, 1.0);
  EXPECT_DOUBLE_EQ(snap.Percentile(100), 1000.0);
}

TEST(LatencyHistogram, PercentileInterpolatesWithinBucket) {
  // Values below 8 land in exact single-value buckets, so percentile
  // answers there must be EXACT, not the bucket's upper edge: the
  // rank-th sample of a bucket sits at the start of its 1/n slice. A
  // former off-by-one reported a single-occupant bucket's upper bound
  // (p50 of {5, 1000} came back 6, a value nobody recorded).
  {
    obs::LatencyHistogram histogram;
    histogram.Record(5);
    histogram.Record(1000);
    const obs::HistogramSnapshot snap = histogram.Snapshot();
    EXPECT_DOUBLE_EQ(snap.Percentile(50), 5.0);
    EXPECT_DOUBLE_EQ(snap.Percentile(100), 1000.0);
  }
  {
    obs::LatencyHistogram histogram;
    histogram.Record(7);
    const obs::HistogramSnapshot snap = histogram.Snapshot();
    // Every percentile of a one-sample distribution is that sample.
    EXPECT_DOUBLE_EQ(snap.Percentile(0), 7.0);
    EXPECT_DOUBLE_EQ(snap.Percentile(50), 7.0);
    EXPECT_DOUBLE_EQ(snap.Percentile(100), 7.0);
  }
  {
    // Three samples in one bucket plus a far outlier: the bucket's first
    // occupant answers exactly at its lower bound, later occupants
    // interpolate within the bucket (never reaching the next one), and
    // p100 reports the true max, not the outlier's bucket edge.
    obs::LatencyHistogram histogram;
    for (int i = 0; i < 3; ++i) histogram.Record(4);
    histogram.Record(100000);
    const obs::HistogramSnapshot snap = histogram.Snapshot();
    EXPECT_DOUBLE_EQ(snap.Percentile(25), 4.0);
    EXPECT_GE(snap.Percentile(75), 4.0);
    EXPECT_LT(snap.Percentile(75), 5.0);
    EXPECT_DOUBLE_EQ(snap.Percentile(100), 100000.0);
  }
}

TEST(LatencyHistogram, EmptySnapshot) {
  const obs::HistogramSnapshot snap = obs::LatencyHistogram().Snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_DOUBLE_EQ(snap.Percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(snap.Mean(), 0.0);
}

TEST(HistogramSnapshot, MergeCombines) {
  obs::LatencyHistogram low, high;
  for (std::uint64_t v = 1; v <= 100; ++v) low.Record(v);
  for (std::uint64_t v = 901; v <= 1000; ++v) high.Record(v);
  obs::HistogramSnapshot merged = low.Snapshot();
  merged.Merge(high.Snapshot());
  EXPECT_EQ(merged.count, 200u);
  EXPECT_EQ(merged.min, 1u);
  EXPECT_EQ(merged.max, 1000u);
  EXPECT_EQ(merged.sum, low.Snapshot().sum + high.Snapshot().sum);
  // Half the samples are <= 100, so p50 resolves in the low cluster and
  // p75 in the high cluster.
  EXPECT_LT(merged.Percentile(50), 130.0);
  EXPECT_GT(merged.Percentile(75), 800.0);
}

// --- Registry and RunMetrics ------------------------------------------

TEST(MetricsRegistry, InstrumentsAreStableAndNamed) {
  obs::MetricsRegistry registry;
  obs::Counter& counter = registry.CounterNamed("hits");
  counter.Add(2);
  EXPECT_EQ(&registry.CounterNamed("hits"), &counter);
  registry.CounterNamed("hits").Add(3);
  registry.GaugeNamed("level").Set(-7);
  registry.HistogramNamed("lat").Record(16);

  const obs::RunMetrics snap = registry.Snapshot();
  EXPECT_EQ(snap.counters.at("hits"), 5u);
  EXPECT_EQ(snap.gauges.at("level"), -7);
  EXPECT_EQ(snap.histograms.at("lat").count, 1u);
}

TEST(RunMetrics, MergeSemantics) {
  obs::MetricsRegistry a_registry, b_registry;
  a_registry.CounterNamed("shared").Add(10);
  a_registry.CounterNamed("only_a").Add(1);
  a_registry.GaugeNamed("g_shared").Set(5);
  a_registry.GaugeNamed("g_only_a").Set(3);
  a_registry.HistogramNamed("h").Record(100);
  b_registry.CounterNamed("shared").Add(7);
  b_registry.CounterNamed("only_b").Add(2);
  b_registry.GaugeNamed("g_shared").Set(9);
  b_registry.HistogramNamed("h").Record(200);

  obs::RunMetrics merged = a_registry.Snapshot();
  merged.Merge(b_registry.Snapshot());
  EXPECT_EQ(merged.counters.at("shared"), 17u);  // counters add
  EXPECT_EQ(merged.counters.at("only_a"), 1u);
  EXPECT_EQ(merged.counters.at("only_b"), 2u);
  EXPECT_EQ(merged.gauges.at("g_shared"), 9);  // last writer wins
  EXPECT_EQ(merged.gauges.at("g_only_a"), 3);  // kept when absent in other
  EXPECT_EQ(merged.histograms.at("h").count, 2u);  // bucket-wise merge
  EXPECT_EQ(merged.histograms.at("h").min, 100u);
  EXPECT_EQ(merged.histograms.at("h").max, 200u);

  // Merging an empty RunMetrics is the identity.
  const obs::RunMetrics before = merged;
  merged.Merge(obs::RunMetrics{});
  EXPECT_EQ(merged.counters, before.counters);
  EXPECT_EQ(merged.gauges, before.gauges);

  // JSON rendering carries the percentile summary.
  const std::string json = merged.ToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"p95\""), std::string::npos);
}

// --- Trace sink / ScopedTimer -----------------------------------------

TEST(JsonlTraceSink, ArrayFramingAndEventShape) {
  std::ostringstream stream;
  {
    obs::JsonlTraceSink sink(stream);
    obs::Tracer tracer;
    tracer.set_sink(&sink);
    EXPECT_TRUE(tracer.enabled());
    tracer.Complete("phase:test", 10, 25);
    tracer.Instant("marker");
    tracer.CounterSample("trie_nodes", 42);
    EXPECT_EQ(sink.event_count(), 3u);
    sink.Close();
    sink.Close();  // idempotent
  }
  const std::string text = stream.str();
  EXPECT_EQ(text.substr(0, 2), "[\n");
  EXPECT_NE(text.find("{}]"), std::string::npos);
  EXPECT_NE(
      text.find("{\"name\":\"phase:test\",\"cat\":\"confanon\",\"ph\":\"X\","
                "\"ts\":10,\"dur\":25,\"pid\":1,\"tid\":1},"),
      std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(text.find("\"name\":\"trie_nodes\""), std::string::npos);
  EXPECT_NE(text.find("\"value\":42"), std::string::npos);
}

TEST(ScopedTimer, IdleWithoutSinkOrHistogram) {
  obs::Tracer tracer;  // no sink
  obs::ScopedTimer span(&tracer, "never-armed");
  span.AddArg("k", std::int64_t{1});
  EXPECT_EQ(span.ElapsedNs(), 0);
  obs::ScopedTimer null_span(nullptr, "also-idle");
  EXPECT_EQ(null_span.ElapsedNs(), 0);
}

TEST(ScopedTimer, RecordsIntoHistogramWithoutTracer) {
  obs::LatencyHistogram histogram;
  { obs::ScopedTimer span(nullptr, "timed", &histogram); }
  EXPECT_EQ(histogram.Count(), 1u);
}

TEST(ScopedTimer, EmitsCompleteEventWithArgs) {
  std::ostringstream stream;
  obs::JsonlTraceSink sink(stream);
  obs::Tracer tracer;
  tracer.set_sink(&sink);
  {
    obs::ScopedTimer span(&tracer, "work");
    span.AddArg("files", std::int64_t{3});
    span.AddArg("mode", std::string("fast"));
  }
  EXPECT_EQ(sink.event_count(), 1u);
  sink.Close();
  const std::string text = stream.str();
  EXPECT_NE(text.find("\"name\":\"work\""), std::string::npos);
  EXPECT_NE(text.find("\"files\":3"), std::string::npos);
  EXPECT_NE(text.find("\"mode\":\"fast\""), std::string::npos);
}

// --- Provenance log ----------------------------------------------------

TEST(ProvenanceLog, QueriesAndJsonl) {
  obs::ProvenanceLog log;
  EXPECT_TRUE(log.empty());
  log.Record({"r1.cfg", 0, "C1.strip-comments", 5, 1});
  log.Record({"r1.cfg", 4, "I1.map-addresses", 3, 3});
  log.Record({"r2.cfg", 4, "I1.map-addresses", 2, 2});
  EXPECT_EQ(log.size(), 3u);

  EXPECT_EQ(log.ForRule("I1.map-addresses").size(), 2u);
  const auto on_line = log.ForLine("r1.cfg", 4);
  ASSERT_EQ(on_line.size(), 1u);
  EXPECT_EQ(on_line[0].rule, "I1.map-addresses");

  std::ostringstream stream;
  log.WriteJsonl(stream);
  const std::string text = stream.str();
  EXPECT_NE(text.find("{\"file\":\"r1.cfg\",\"line\":0,"
                      "\"rule\":\"C1.strip-comments\","
                      "\"tokens_before\":5,\"tokens_after\":1}"),
            std::string::npos);
  // Pure JSONL: three lines, no array framing.
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(text.begin(), text.end(), '\n')),
            3u);
  EXPECT_EQ(text.front(), '{');

  log.Clear();
  EXPECT_TRUE(log.empty());
}

// --- Anonymizer integration -------------------------------------------

constexpr const char* kConfig =
    "! leaked comment\n"
    "hostname edge-router-1\n"
    "interface Serial0\n"
    " description to PAIX for customer FooCorp\n"
    " ip address 192.168.12.9 255.255.255.252\n"
    "router bgp 7018\n"
    " neighbor 10.2.3.4 remote-as 701\n"
    "ip as-path access-list 7 permit _701_\n"
    "banner motd ^C\n"
    "Unauthorized access prohibited, call NOC at 555-0100\n"
    "^C\n"
    "end\n";

TEST(ObservedAnonymizer, MetricsMatchReportAndTraceNests) {
  std::ostringstream trace_stream;
  obs::JsonlTraceSink sink(trace_stream);
  obs::MetricsRegistry registry;
  obs::ProvenanceLog provenance;

  core::AnonymizerOptions options;
  options.salt = "obs-test";
  core::Anonymizer anonymizer(std::move(options));
  anonymizer.install_hooks(obs::Hooks{&registry, &sink, &provenance});
  const auto post = anonymizer.AnonymizeNetwork(
      {config::ConfigFile::FromText("edge.cfg", kConfig)});
  ASSERT_EQ(post.size(), 1u);
  sink.Close();

  const core::AnonymizationReport& report = anonymizer.report();
  const obs::RunMetrics metrics = registry.Snapshot();

  // Every rule counter equals the report's fire count, and vice versa.
  for (const auto& [rule, fires] : report.rule_fires) {
    ASSERT_TRUE(metrics.counters.contains("rule." + rule)) << rule;
    EXPECT_EQ(metrics.counters.at("rule." + rule), fires) << rule;
  }
  for (const auto& [name, value] : metrics.counters) {
    if (name.rfind("rule.", 0) == 0) {
      EXPECT_EQ(report.rule_fires.at(name.substr(5)), value) << name;
    }
  }
  EXPECT_EQ(metrics.counters.at("report.total_lines"), report.total_lines);
  EXPECT_EQ(metrics.counters.at("report.words_hashed"), report.words_hashed);
  EXPECT_EQ(metrics.counters.at("report.addresses_mapped"),
            report.addresses_mapped);

  // Per-line latency histogram saw every input line.
  EXPECT_EQ(metrics.histograms.at("core.line_ns").count, report.total_lines);
  EXPECT_EQ(metrics.histograms.at("core.file_ns").count, 1u);
  EXPECT_GT(metrics.gauges.at("ipanon.trie_nodes"), 0);

  // Trace: network -> file -> per-rule spans, all complete events.
  const std::string trace = trace_stream.str();
  EXPECT_NE(trace.find("\"name\":\"anonymize-network\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"file:edge.cfg\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"rule:I1.map-addresses\""),
            std::string::npos);
  EXPECT_EQ(trace.substr(0, 2), "[\n");
  EXPECT_NE(trace.find("{}]"), std::string::npos);

  // Provenance: every entry names a rule the report counted, and the
  // comment-strip rule logged token removal.
  ASSERT_FALSE(provenance.empty());
  for (const auto& entry : provenance.entries()) {
    EXPECT_TRUE(report.rule_fires.contains(entry.rule)) << entry.rule;
    EXPECT_EQ(entry.file, "edge.cfg");
  }
  bool saw_removal = false;
  for (const auto& entry : provenance.ForRule("C1.strip-bang-comments")) {
    if (entry.tokens_after < entry.tokens_before) saw_removal = true;
  }
  EXPECT_TRUE(saw_removal);
}

TEST(ObservedAnonymizer, SilentWithoutInstrumentation) {
  core::AnonymizerOptions options;
  options.salt = "obs-test";
  core::Anonymizer plain(std::move(options));
  const auto post = plain.AnonymizeNetwork(
      {config::ConfigFile::FromText("edge.cfg", kConfig)});
  ASSERT_EQ(post.size(), 1u);
  EXPECT_FALSE(plain.report().rule_fires.empty());
}

TEST(ObservedAnonymizer, JunosMetricsUsePrefix) {
  obs::MetricsRegistry registry;
  obs::ProvenanceLog provenance;
  junos::JunosAnonymizerOptions options;
  options.salt = "obs-test";
  junos::JunosAnonymizer anonymizer(std::move(options));
  anonymizer.install_hooks(obs::Hooks{.metrics = &registry,
                                      .provenance = &provenance});
  anonymizer.AnonymizeNetwork({config::ConfigFile::FromText(
      "r0.conf",
      "/* core router */\n"
      "system {\n"
      "    host-name core-fra-1;\n"
      "}\n"
      "routing-options {\n"
      "    autonomous-system 3320;\n"
      "}\n")});

  const obs::RunMetrics metrics = registry.Snapshot();
  EXPECT_EQ(metrics.counters.at("junos.report.total_lines"),
            anonymizer.report().total_lines);
  for (const auto& [rule, fires] : anonymizer.report().rule_fires) {
    EXPECT_EQ(metrics.counters.at("junos.rule." + rule), fires) << rule;
  }
  EXPECT_EQ(metrics.histograms.at("junos.line_ns").count,
            anonymizer.report().total_lines);
  ASSERT_FALSE(provenance.empty());
  for (const auto& entry : provenance.entries()) {
    EXPECT_EQ(entry.rule.substr(0, 2), "J.") << entry.rule;
  }
}

TEST(ObservedAnonymizer, HotPathInstrumentsArenaAndTokenize) {
  // The zero-copy hot path reports its own health: tokenize latency per
  // line and the arena's allocation/reset counters at file boundaries.
  obs::MetricsRegistry registry;
  obs::Hooks hooks;
  hooks.metrics = &registry;

  core::AnonymizerOptions options;
  options.salt = "obs-test";
  core::Anonymizer anonymizer(std::move(options));
  anonymizer.install_hooks(hooks);
  const auto post = anonymizer.AnonymizeNetwork(
      {config::ConfigFile::FromText("edge.cfg", kConfig)});
  ASSERT_EQ(post.size(), 1u);

  const obs::RunMetrics metrics = registry.Snapshot();
  // One tokenize sample per non-banner line that reached the tokenizer.
  EXPECT_GT(metrics.histograms.at("core.tokenize_ns").count, 0u);
  EXPECT_LE(metrics.histograms.at("core.tokenize_ns").count,
            anonymizer.report().total_lines);
  // The sample config rewrites words (hashes, mapped addresses), so the
  // arena handed out bytes and was reset once per file.
  EXPECT_GT(metrics.counters.at("arena.bytes"), 0u);
  EXPECT_EQ(metrics.counters.at("arena.resets"), 1u);
}

TEST(ObservedAnonymizer, LeakScanRecordsMetrics) {
  core::AnonymizerOptions options;
  options.salt = "obs-test";
  core::Anonymizer anonymizer(std::move(options));
  const auto post = anonymizer.AnonymizeNetwork(
      {config::ConfigFile::FromText("edge.cfg", kConfig)});
  obs::MetricsRegistry registry;
  core::LeakDetector::Scan(post, anonymizer.leak_record(), &registry);
  const obs::RunMetrics metrics = registry.Snapshot();
  EXPECT_GT(metrics.counters.at("leak.lines_scanned"), 0u);
  EXPECT_TRUE(metrics.counters.contains("leak.findings"));
  EXPECT_EQ(metrics.histograms.at("leak.scan_ns").count, post.size());
}

}  // namespace
}  // namespace confanon
