// Parallel corpus pipeline tests.
//
// The load-bearing property is byte-identical output for any thread
// count: after the corpus-wide preload (rule I7), no randomness is left
// to consume, so worker interleaving cannot change a single output byte.
// These tests run the same corpora at 1/2/4/8 threads and compare whole
// texts — and they are the suite the TSan CI job runs, so the sharded
// hasher, shared trie, memo and trace sink are exercised under race
// detection, not just for equality.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "config/document.h"
#include "core/anonymizer.h"
#include "gen/config_writer.h"
#include "gen/network_gen.h"
#include "junos/anonymizer.h"
#include "junos/writer.h"
#include "obs/hooks.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/provenance.h"
#include "obs/trace.h"
#include "pipeline/pipeline.h"

namespace confanon {
namespace {

std::vector<config::ConfigFile> IosCorpus(std::uint64_t seed, int routers) {
  gen::GeneratorParams params;
  params.seed = seed;
  params.router_count = routers;
  // Force the regex features on so the rewriters (and their memo) run.
  params.p_public_range_regex = 1.0;
  params.p_alternation_regex = 1.0;
  params.p_community_regex = 1.0;
  return gen::WriteNetworkConfigs(
      gen::GenerateNetwork(params, static_cast<int>(seed)));
}

std::vector<config::ConfigFile> JunosCorpus(std::uint64_t seed, int routers) {
  gen::GeneratorParams params;
  params.seed = seed;
  params.router_count = routers;
  return junos::WriteJunosNetworkConfigs(
      gen::GenerateNetwork(params, static_cast<int>(seed)));
}

/// Interleaves an IOS and a JunOS network file-by-file.
std::vector<config::ConfigFile> MixedCorpus(std::uint64_t seed) {
  const auto ios = IosCorpus(seed, 10);
  const auto junos = JunosCorpus(seed + 1, 10);
  std::vector<config::ConfigFile> mixed;
  for (std::size_t i = 0; i < std::max(ios.size(), junos.size()); ++i) {
    if (i < ios.size()) mixed.push_back(ios[i]);
    if (i < junos.size()) mixed.push_back(junos[i]);
  }
  return mixed;
}

std::vector<config::ConfigFile> RunPipeline(
    const std::vector<config::ConfigFile>& files, int threads) {
  pipeline::PipelineOptions options;
  options.base.salt = "pipeline-test-salt";
  options.threads = threads;
  pipeline::CorpusPipeline pipeline(std::move(options));
  return pipeline.AnonymizeCorpus(files);
}

void ExpectSameTexts(const std::vector<config::ConfigFile>& a,
                     const std::vector<config::ConfigFile>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name(), b[i].name()) << "file " << i;
    EXPECT_EQ(a[i].ToText(), b[i].ToText()) << a[i].name();
  }
}

// --- Dialect detection -------------------------------------------------

TEST(DetectDialect, ClassifiesBraceSyntax) {
  EXPECT_EQ(pipeline::DetectDialect(config::ConfigFile::FromText(
                "r.cfg", "hostname edge-1\ninterface Serial0\n")),
            pipeline::FileDialect::kIos);
  EXPECT_EQ(pipeline::DetectDialect(config::ConfigFile::FromText(
                "r.conf", "system {\n    host-name core-1;\n}\n")),
            pipeline::FileDialect::kJunos);
  // Empty files default to IOS.
  EXPECT_EQ(pipeline::DetectDialect(config::ConfigFile::FromText("e", "")),
            pipeline::FileDialect::kIos);
}

TEST(DetectDialect, GeneratedCorporaClassifyCorrectly) {
  for (const auto& file : IosCorpus(11, 6)) {
    EXPECT_EQ(pipeline::DetectDialect(file), pipeline::FileDialect::kIos)
        << file.name();
  }
  for (const auto& file : JunosCorpus(11, 6)) {
    EXPECT_EQ(pipeline::DetectDialect(file), pipeline::FileDialect::kJunos)
        << file.name();
  }
}

// --- Sequential equivalence --------------------------------------------

TEST(CorpusPipeline, SingleThreadMatchesSequentialIosEngine) {
  const auto files = IosCorpus(21, 12);

  core::AnonymizerOptions options;
  options.salt = "pipeline-test-salt";
  core::Anonymizer sequential(options);
  const auto expected = sequential.AnonymizeNetwork(files);

  pipeline::PipelineOptions popts;
  popts.base = options;
  popts.threads = 1;
  pipeline::CorpusPipeline pipeline(popts);
  const auto actual = pipeline.AnonymizeCorpus(files);

  ExpectSameTexts(expected, actual);
  // The merged pipeline report equals the sequential engine's report.
  EXPECT_EQ(pipeline.report().ToJson(), sequential.report().ToJson());
}

TEST(CorpusPipeline, SingleThreadMatchesSequentialJunosEngine) {
  const auto files = JunosCorpus(22, 12);

  junos::JunosAnonymizerOptions joptions;
  joptions.salt = "pipeline-test-salt";
  junos::JunosAnonymizer sequential(joptions);
  const auto expected = sequential.AnonymizeNetwork(files);

  pipeline::PipelineOptions popts;
  popts.base.salt = "pipeline-test-salt";
  popts.threads = 1;
  pipeline::CorpusPipeline pipeline(popts);
  const auto actual = pipeline.AnonymizeCorpus(files);

  ExpectSameTexts(expected, actual);
  EXPECT_EQ(pipeline.report().ToJson(), sequential.report().ToJson());
}

// --- Parallel determinism ----------------------------------------------

class PipelineDeterminism : public ::testing::TestWithParam<int> {};

TEST_P(PipelineDeterminism, IosCorpusByteIdentical) {
  const auto files = IosCorpus(31, 16);
  const auto baseline = RunPipeline(files, 1);
  const auto parallel = RunPipeline(files, GetParam());
  ExpectSameTexts(baseline, parallel);
}

TEST_P(PipelineDeterminism, JunosCorpusByteIdentical) {
  const auto files = JunosCorpus(32, 16);
  const auto baseline = RunPipeline(files, 1);
  const auto parallel = RunPipeline(files, GetParam());
  ExpectSameTexts(baseline, parallel);
}

TEST_P(PipelineDeterminism, MixedCorpusByteIdentical) {
  const auto files = MixedCorpus(33);
  const auto baseline = RunPipeline(files, 1);
  const auto parallel = RunPipeline(files, GetParam());
  ExpectSameTexts(baseline, parallel);
}

TEST_P(PipelineDeterminism, ReportsMatchAcrossThreadCounts) {
  const auto files = MixedCorpus(34);

  pipeline::PipelineOptions popts;
  popts.base.salt = "pipeline-test-salt";
  popts.threads = 1;
  pipeline::CorpusPipeline baseline(popts);
  baseline.AnonymizeCorpus(files);

  popts.threads = GetParam();
  pipeline::CorpusPipeline parallel(popts);
  parallel.AnonymizeCorpus(files);

  EXPECT_EQ(baseline.report().ToJson(), parallel.report().ToJson());
}

TEST_P(PipelineDeterminism, NetworkSetByteIdenticalAcrossThreads) {
  // Cross-network mode: three independent networks (IOS, JunOS, mixed),
  // each with its own salt, run through AnonymizeNetworkSet. The
  // per-network determinism guarantee composes, so the whole set must be
  // byte-identical at any thread budget — and outputs must land at their
  // task index.
  const auto build_tasks = [] {
    std::vector<pipeline::NetworkTask> tasks(3);
    tasks[0].options.base.salt = "netset-a";
    tasks[0].files = IosCorpus(41, 6);
    tasks[1].options.base.salt = "netset-b";
    tasks[1].files = JunosCorpus(42, 6);
    tasks[2].options.base.salt = "netset-c";
    tasks[2].files = MixedCorpus(43);
    return tasks;
  };
  const auto tasks = build_tasks();
  const auto baseline = pipeline::AnonymizeNetworkSet(tasks, {.threads = 1});
  const auto parallel =
      pipeline::AnonymizeNetworkSet(tasks, {.threads = GetParam()});
  ASSERT_EQ(baseline.size(), tasks.size());
  ASSERT_EQ(parallel.size(), tasks.size());
  for (std::size_t n = 0; n < tasks.size(); ++n) {
    ExpectSameTexts(baseline[n].files, parallel[n].files);
    EXPECT_EQ(baseline[n].report.ToJson(), parallel[n].report.ToJson())
        << "network " << n;
  }
}

TEST(AnonymizeNetworkSet, MatchesStandalonePipelines) {
  // Each network's output equals what its own standalone CorpusPipeline
  // produces — the set adds scheduling, never changes a byte.
  std::vector<pipeline::NetworkTask> tasks(2);
  tasks[0].options.base.salt = "solo-a";
  tasks[0].files = IosCorpus(51, 5);
  tasks[1].options.base.salt = "solo-b";
  tasks[1].files = JunosCorpus(52, 5);

  const auto results = pipeline::AnonymizeNetworkSet(tasks, {.threads = 4});

  for (std::size_t n = 0; n < tasks.size(); ++n) {
    pipeline::CorpusPipeline solo(tasks[n].options);
    const auto expected = solo.AnonymizeCorpus(tasks[n].files);
    ExpectSameTexts(expected, results[n].files);
    EXPECT_EQ(solo.report().ToJson(), results[n].report.ToJson());
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, PipelineDeterminism,
                         ::testing::Values(2, 4, 8),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "t" + std::to_string(info.param);
                         });

// --- Mixed-dialect referential integrity --------------------------------

TEST(CorpusPipeline, MixedCorpusSharesOneMapping) {
  // The same address and the same hostname word planted in an IOS file
  // and a JunOS file must map identically: both engines run over the ONE
  // shared NetworkState.
  const auto ios_file = config::ConfigFile::FromText(
      "edge.cfg",
      "hostname shared-leak-name\n"
      "interface Serial0\n"
      " ip address 10.77.88.99 255.255.255.0\n");
  const auto junos_file = config::ConfigFile::FromText(
      "core.conf",
      "system {\n"
      "    host-name shared-leak-name;\n"
      "}\n"
      "interfaces {\n"
      "    ge-0/0/0 {\n"
      "        unit 0 {\n"
      "            family inet {\n"
      "                address 10.77.88.99/24;\n"
      "            }\n"
      "        }\n"
      "    }\n"
      "}\n");

  pipeline::PipelineOptions popts;
  popts.base.salt = "pipeline-test-salt";
  popts.threads = 2;
  pipeline::CorpusPipeline pipeline(popts);
  const auto post = pipeline.AnonymizeCorpus({ios_file, junos_file});
  ASSERT_EQ(post.size(), 2u);

  const std::string mapped_addr =
      pipeline.ip_anonymizer().Map(*net::Ipv4Address::Parse("10.77.88.99"))
          .ToString();
  EXPECT_NE(post[0].ToText().find(mapped_addr), std::string::npos)
      << "IOS output missing " << mapped_addr;
  EXPECT_NE(post[1].ToText().find(mapped_addr), std::string::npos)
      << "JunOS output missing " << mapped_addr;

  const std::string token = pipeline.string_hasher().Hash("shared-leak-name");
  EXPECT_NE(post[0].ToText().find(token), std::string::npos);
  EXPECT_NE(post[1].ToText().find(token), std::string::npos);
  // And the original never survives.
  EXPECT_EQ(post[0].ToText().find("shared-leak-name"), std::string::npos);
  EXPECT_EQ(post[1].ToText().find("shared-leak-name"), std::string::npos);
}

// --- Standalone AnonymizeFile preload regression ------------------------

TEST(AnonymizeFile, StandaloneCallPreloadsOwnAddresses) {
  // Rule I7 semantics for a single file: a bare AnonymizeFile call must
  // produce the same bytes as AnonymizeNetwork over that one file. Before
  // the preload fix the standalone path skipped the subnet preload, so
  // subnet (host-bits-zero) addresses could lose their structure.
  const auto file = config::ConfigFile::FromText(
      "edge.cfg",
      "hostname edge-1\n"
      "interface Serial0\n"
      " ip address 172.16.4.1 255.255.255.0\n"
      "router ospf 10\n"
      " network 172.16.4.0 0.0.0.255 area 0\n");

  core::AnonymizerOptions options;
  options.salt = "preload-regression";
  core::Anonymizer standalone(options);
  const auto direct = standalone.AnonymizeFile(file);

  core::Anonymizer reference(options);
  const auto via_network = reference.AnonymizeNetwork({file});
  ASSERT_EQ(via_network.size(), 1u);
  EXPECT_EQ(direct.ToText(), via_network[0].ToText());

  // The standalone path counts its preload under rule I7 too.
  ASSERT_TRUE(
      standalone.report().rule_fires.contains(core::rules::kSubnetPreload));
  EXPECT_EQ(standalone.report().rule_fires.at(core::rules::kSubnetPreload),
            reference.report().rule_fires.at(core::rules::kSubnetPreload));
}

TEST(AnonymizeFile, JunosStandaloneCallPreloadsOwnAddresses) {
  const auto file = config::ConfigFile::FromText(
      "core.conf",
      "interfaces {\n"
      "    ge-0/0/0 {\n"
      "        unit 0 {\n"
      "            family inet {\n"
      "                address 172.16.9.1/24;\n"
      "            }\n"
      "        }\n"
      "    }\n"
      "}\n");

  junos::JunosAnonymizerOptions options;
  options.salt = "preload-regression";
  junos::JunosAnonymizer standalone(options);
  const auto direct = standalone.AnonymizeFile(file);

  junos::JunosAnonymizer reference(options);
  const auto via_network = reference.AnonymizeNetwork({file});
  ASSERT_EQ(via_network.size(), 1u);
  EXPECT_EQ(direct.ToText(), via_network[0].ToText());
}

// --- Observability through the pipeline ---------------------------------

TEST(CorpusPipeline, HooksCoverMetricsTraceAndProvenance) {
  const auto files = MixedCorpus(41);

  obs::MetricsRegistry registry;
  obs::ProvenanceLog provenance;
  std::ostringstream trace_stream;
  obs::JsonlTraceSink sink(trace_stream);

  pipeline::PipelineOptions popts;
  popts.base.salt = "pipeline-test-salt";
  popts.threads = 4;
  pipeline::CorpusPipeline pipeline(popts);
  pipeline.install_hooks(obs::Hooks{&registry, &sink, &provenance});
  const auto post = pipeline.AnonymizeCorpus(files);
  sink.Close();
  ASSERT_EQ(post.size(), files.size());

  const obs::RunMetrics metrics = registry.Snapshot();
  // Worker report deltas merged into the shared registry equal the merged
  // pipeline report (IOS under "report.*", JunOS under "junos.report.*").
  const auto& report = pipeline.report();
  EXPECT_EQ(metrics.counters.at("report.total_lines") +
                metrics.counters.at("junos.report.total_lines"),
            report.total_lines);
  // The shared trie's counters are synced exactly once (centrally).
  EXPECT_TRUE(metrics.counters.contains("ipanon.preloaded_addresses"));
  EXPECT_GT(metrics.gauges.at("ipanon.trie_nodes"), 0);
  // The memo-hit counter exists (eagerly registered) for BENCH reporting.
  EXPECT_TRUE(metrics.counters.contains("asn.rewrite_memo_hits"));
  // Rule I7 fired corpus-wide and landed under its sequential name.
  EXPECT_TRUE(metrics.counters.contains(
      std::string("rule.") + core::rules::kSubnetPreload));

  // The shared trace sink took events from every worker without tearing.
  EXPECT_GT(sink.event_count(), 0u);

  // Provenance is concatenated in corpus order: file names appear in
  // non-decreasing corpus position.
  ASSERT_FALSE(provenance.empty());
  std::size_t last_index = 0;
  for (const auto& entry : provenance.entries()) {
    std::size_t index = files.size();
    for (std::size_t i = 0; i < files.size(); ++i) {
      if (files[i].name() == entry.file) {
        index = i;
        break;
      }
    }
    ASSERT_LT(index, files.size()) << entry.file;
    EXPECT_GE(index, last_index) << entry.file;
    last_index = index;
  }
}

TEST(CorpusPipeline, RewriteMemoCountsRepeatedPatterns) {
  // The same as-path regexp in several files: the first rewrite computes
  // the DFA, later ones hit the bounded memo.
  std::vector<config::ConfigFile> files;
  for (int i = 0; i < 6; ++i) {
    files.push_back(config::ConfigFile::FromText(
        "r" + std::to_string(i) + ".cfg",
        "hostname r" + std::to_string(i) +
            "\n"
            "ip as-path access-list 7 permit _701_\n"
            "ip as-path access-list 8 permit ^(64[0-9][0-9])$\n"));
  }

  obs::MetricsRegistry registry;
  pipeline::PipelineOptions popts;
  popts.base.salt = "pipeline-test-salt";
  popts.threads = 2;
  pipeline::CorpusPipeline pipeline(popts);
  pipeline.install_hooks(obs::Hooks{.metrics = &registry});
  pipeline.AnonymizeCorpus(files);

  EXPECT_GT(pipeline.state()->aspath_rewriter.memo().hits(), 0u);
  const obs::RunMetrics metrics = registry.Snapshot();
  EXPECT_GT(metrics.counters.at("asn.rewrite_memo_hits"), 0u);
}

TEST(CorpusPipeline, PhaseProfileCoversTheRun) {
  // At threads=1 the four phase windows (preload, prewarm, anonymize,
  // join) tile AnonymizeCorpus exactly, so their wall total must track
  // the measured call duration — the acceptance check behind the
  // profiler's "self-times sum to wall time" claim. A generous absolute
  // slack absorbs scheduler noise on tiny corpora.
  const auto files = MixedCorpus(77);
  pipeline::PipelineOptions options;
  options.base.salt = "pipeline-test-salt";
  options.threads = 1;
  pipeline::CorpusPipeline pipeline(std::move(options));

  obs::PhaseProfiler profiler({.enable_perf_counters = false});
  obs::Hooks hooks;
  hooks.profiler = &profiler;
  hooks.trace = &profiler;  // buffer engine spans for the folded profile
  pipeline.install_hooks(hooks);

  const auto start = std::chrono::steady_clock::now();
  pipeline.AnonymizeCorpus(files);
  const double wall_ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());

  const obs::PhaseProfiler::Profile profile = profiler.Finish();
  std::vector<std::string> names;
  for (const auto& phase : profile.phases) names.push_back(phase.name);
  EXPECT_EQ(names, (std::vector<std::string>{"preload", "prewarm",
                                             "anonymize", "join"}));

  const double phase_ns = static_cast<double>(profile.PhaseWallNsTotal());
  const double slack = std::max(wall_ns * 0.10, 2e6);  // 10% or 2ms
  EXPECT_NEAR(phase_ns, wall_ns, slack);

  // The span stream folds under the same phase labels, with the file
  // spans rooted in the anonymize window.
  bool saw_anonymize_file = false;
  for (const auto& span : profile.spans) {
    if (span.path.rfind("anonymize;", 0) == 0 &&
        span.path.find("file:") != std::string::npos) {
      saw_anonymize_file = true;
    }
  }
  EXPECT_TRUE(saw_anonymize_file);
}

TEST(CorpusPipeline, ExportKnownEntitiesRendersSharedMappings) {
  pipeline::PipelineOptions popts;
  popts.base.salt = "pipeline-test-salt";
  popts.base.known_entities.push_back(
      {"FOO-CORP", {701, 7018}, {net::Prefix(*net::Ipv4Address::Parse("12.0.0.0"), 8)}});
  popts.threads = 2;
  pipeline::CorpusPipeline pipeline(popts);
  pipeline.AnonymizeCorpus({config::ConfigFile::FromText(
      "r.cfg", "hostname foocorp-edge\n ip address 10.0.0.1 255.0.0.0\n")});
  std::ostringstream out;
  pipeline.ExportKnownEntities(out);
  // The grouping renders without the label, over the shared mappings.
  EXPECT_NE(out.str().find("entity 0: asns "), std::string::npos);
  EXPECT_EQ(out.str().find("FOO-CORP"), std::string::npos);
}

}  // namespace
}  // namespace confanon
