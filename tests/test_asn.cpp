#include "asn/asn_map.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "asn/community.h"

namespace confanon::asn {
namespace {

TEST(AsnRanges, PublicPrivateSplit) {
  EXPECT_FALSE(IsPublicAsn(0));
  EXPECT_TRUE(IsPublicAsn(1));
  EXPECT_TRUE(IsPublicAsn(701));
  EXPECT_TRUE(IsPublicAsn(64511));
  EXPECT_FALSE(IsPublicAsn(64512));
  EXPECT_FALSE(IsPublicAsn(65535));
  EXPECT_FALSE(IsPrivateAsn(64511));
  EXPECT_TRUE(IsPrivateAsn(64512));
  EXPECT_TRUE(IsPrivateAsn(65535));
  EXPECT_FALSE(IsPrivateAsn(0));
}

TEST(AsnMap, PrivateAndZeroAreIdentity) {
  const AsnMap map("salt");
  EXPECT_EQ(map.Map(0), 0u);
  for (std::uint32_t asn = 64512; asn <= 65535; asn += 97) {
    EXPECT_EQ(map.Map(asn), asn);
  }
  EXPECT_EQ(map.Map(65535), 65535u);
}

TEST(AsnMap, PublicMapsToPublic) {
  const AsnMap map("salt");
  for (std::uint32_t asn = 1; asn < 64512; asn += 1009) {
    EXPECT_TRUE(IsPublicAsn(map.Map(asn))) << asn;
  }
}

TEST(AsnMap, IsBijectiveOverFullPublicSpace) {
  const AsnMap map("bijective-salt");
  std::vector<bool> seen(64512, false);
  for (std::uint32_t asn = 1; asn <= 64511; ++asn) {
    const std::uint32_t mapped = map.Map(asn);
    ASSERT_TRUE(IsPublicAsn(mapped));
    ASSERT_FALSE(seen[mapped]) << "duplicate image " << mapped;
    seen[mapped] = true;
  }
}

TEST(AsnMap, UnmapInvertsMap) {
  const AsnMap map("inverse-salt");
  for (std::uint32_t asn = 1; asn < 64512; asn += 331) {
    EXPECT_EQ(map.Unmap(map.Map(asn)), asn);
  }
  EXPECT_EQ(map.Unmap(65000), 65000u);
}

TEST(AsnMap, DeterministicPerSalt) {
  const AsnMap a("same");
  const AsnMap b("same");
  const AsnMap c("different");
  int differs = 0;
  for (std::uint32_t asn = 1; asn < 64512; asn += 503) {
    EXPECT_EQ(a.Map(asn), b.Map(asn));
    if (a.Map(asn) != c.Map(asn)) ++differs;
  }
  EXPECT_GT(differs, 100);
}

TEST(AsnMap, ActuallyPermutes) {
  const AsnMap map("moves-salt");
  int fixed_points = 0;
  for (std::uint32_t asn = 1; asn < 64512; asn += 61) {
    if (map.Map(asn) == asn) ++fixed_points;
  }
  // A random permutation of 64511 elements has ~1 fixed point; our sample
  // of ~1000 should contain essentially none.
  EXPECT_LT(fixed_points, 3);
}

TEST(Uint16Permutation, BijectiveAndDeterministic) {
  const Uint16Permutation perm("salt", "values");
  std::vector<bool> seen(65536, false);
  for (std::uint32_t v = 0; v <= 65535; ++v) {
    const std::uint32_t mapped = perm.Map(v);
    ASSERT_LE(mapped, 65535u);
    ASSERT_FALSE(seen[mapped]);
    seen[mapped] = true;
    EXPECT_EQ(perm.Unmap(mapped), v);
  }
  const Uint16Permutation again("salt", "values");
  EXPECT_EQ(perm.Map(7100), again.Map(7100));
  const Uint16Permutation other_label("salt", "other");
  int differs = 0;
  for (std::uint32_t v = 0; v < 65536; v += 257) {
    if (perm.Map(v) != other_label.Map(v)) ++differs;
  }
  EXPECT_GT(differs, 200);
}

// --- communities ---

TEST(Community, ParseValid) {
  const auto c = ParseCommunity("701:1234");
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->asn, 701u);
  EXPECT_EQ(c->value, 1234u);
  EXPECT_EQ(c->ToString(), "701:1234");
  EXPECT_EQ(ParseCommunity("0:0")->ToString(), "0:0");
  EXPECT_EQ(ParseCommunity("65535:65535")->value, 65535u);
}

TEST(Community, ParseRejects) {
  EXPECT_FALSE(ParseCommunity("701"));
  EXPECT_FALSE(ParseCommunity("701:"));
  EXPECT_FALSE(ParseCommunity(":1234"));
  EXPECT_FALSE(ParseCommunity("70000:1"));
  EXPECT_FALSE(ParseCommunity("701:70000"));
  EXPECT_FALSE(ParseCommunity("701:12:34"));
  EXPECT_FALSE(ParseCommunity("701:12a"));
  EXPECT_FALSE(ParseCommunity("no-export"));
}

TEST(Community, WellKnown) {
  EXPECT_TRUE(IsWellKnownCommunity(*ParseCommunity("65535:65281")));
  EXPECT_TRUE(IsWellKnownCommunity(*ParseCommunity("65535:65282")));
  EXPECT_TRUE(IsWellKnownCommunity(*ParseCommunity("65535:65283")));
  EXPECT_FALSE(IsWellKnownCommunity(*ParseCommunity("65535:1")));
  EXPECT_FALSE(IsWellKnownCommunity(*ParseCommunity("701:65281")));
}

TEST(CommunityAnonymizer, MapsBothHalves) {
  const AsnMap asn_map("net-salt");
  const Uint16Permutation values("net-salt", "community-values");
  const CommunityAnonymizer anonymizer(asn_map, values);
  const Community mapped = anonymizer.Map(*ParseCommunity("701:7100"));
  EXPECT_EQ(mapped.asn, asn_map.Map(701));
  EXPECT_EQ(mapped.value, values.Map(7100));
  EXPECT_NE(mapped.ToString(), "701:7100");
}

TEST(CommunityAnonymizer, WellKnownPassThrough) {
  const AsnMap asn_map("net-salt");
  const Uint16Permutation values("net-salt", "community-values");
  const CommunityAnonymizer anonymizer(asn_map, values);
  EXPECT_EQ(anonymizer.Map(*ParseCommunity("65535:65281")).ToString(),
            "65535:65281");
}

TEST(CommunityAnonymizer, PrivateAsnHalfKeptValueStillMapped) {
  const AsnMap asn_map("net-salt");
  const Uint16Permutation values("net-salt", "community-values");
  const CommunityAnonymizer anonymizer(asn_map, values);
  const Community mapped = anonymizer.Map(*ParseCommunity("65000:42"));
  EXPECT_EQ(mapped.asn, 65000u);
  EXPECT_EQ(mapped.value, values.Map(42));
}

TEST(CommunityAnonymizer, MapTextRoundTrip) {
  const AsnMap asn_map("net-salt");
  const Uint16Permutation values("net-salt", "community-values");
  const CommunityAnonymizer anonymizer(asn_map, values);
  EXPECT_TRUE(anonymizer.MapText("701:120").has_value());
  EXPECT_FALSE(anonymizer.MapText("not-a-community").has_value());
  // Consistency: same input, same output.
  EXPECT_EQ(*anonymizer.MapText("701:120"), *anonymizer.MapText("701:120"));
}

}  // namespace
}  // namespace confanon::asn
