// Tests for the JunOS design extractor and the JunOS validation suite.
#include <gtest/gtest.h>

#include "gen/network_gen.h"
#include "junos/anonymizer.h"
#include "junos/design_extract.h"
#include "junos/validate.h"
#include "junos/writer.h"

namespace confanon::junos {
namespace {

config::ConfigFile File(std::string name, std::string_view text) {
  return config::ConfigFile::FromText(std::move(name), text);
}

const char* kJunosRouter1 = R"(system {
    host-name r1;
}
interfaces {
    lo0 {
        unit 0 {
            family inet {
                address 10.0.255.1/32;
            }
        }
    }
    so-0/0 {
        unit 0 {
            family inet {
                address 10.0.0.1/30;
            }
        }
    }
    so-0/9 {
        unit 0 {
            family inet {
                address 6.6.6.1/30;
            }
        }
    }
    ge-0/1 {
        unit 5 {
            family inet {
                address 10.1.0.1/24;
            }
        }
    }
}
routing-options {
    autonomous-system 2001;
}
protocols {
    ospf {
        area 0 {
            interface lo0;
            interface so-0/0;
        }
    }
    bgp {
        group internal-mesh {
            type internal;
            neighbor 10.0.255.2;
        }
        group ext-peer {
            type external;
            peer-as 701;
            import PEER-in;
            export PEER-out;
            neighbor 6.6.6.2;
        }
    }
}
policy-options {
    prefix-list CUST {
        10.1.0.0/24;
    }
    policy-statement PEER-in {
        term t10 {
            from {
                as-path aspath-50;
            }
            then {
                reject;
            }
        }
        term t20 {
            from {
                community comm-100;
            }
            then {
                accept;
            }
        }
    }
    policy-statement PEER-out {
        term t10 {
            from {
                prefix-list CUST;
            }
            then {
                accept;
            }
        }
    }
}
)";

const char* kJunosRouter2 = R"(system {
    host-name r2;
}
interfaces {
    lo0 {
        unit 0 {
            family inet {
                address 10.0.255.2/32;
            }
        }
    }
    so-1/0 {
        unit 0 {
            family inet {
                address 10.0.0.2/30;
            }
        }
    }
}
routing-options {
    autonomous-system 2001;
}
protocols {
    bgp {
        group internal-mesh {
            type internal;
            neighbor 10.0.255.1;
        }
    }
}
)";

std::vector<config::ConfigFile> TwoRouters() {
  return {File("r1", kJunosRouter1), File("r2", kJunosRouter2)};
}

TEST(JunosDesign, InterfacesWithUnits) {
  const auto design = ExtractJunosDesign(TwoRouters());
  const auto& r1 = design.routers[0];
  ASSERT_EQ(r1.hostname, "r1");
  ASSERT_EQ(r1.interfaces.size(), 4u);
  // Sorted by name: ge-0/1.5, lo0, so-0/0, so-0/9.
  EXPECT_EQ(r1.interfaces[0].name, "ge-0/1.5");
  EXPECT_EQ(r1.interfaces[0].subnet.ToString(), "10.1.0.0/24");
  EXPECT_EQ(r1.interfaces[1].name, "lo0");
  EXPECT_EQ(r1.interfaces[2].name, "so-0/0");
  EXPECT_EQ(r1.interfaces[2].address.ToString(), "10.0.0.1");
  EXPECT_EQ(r1.interfaces[3].name, "so-0/9");
}

TEST(JunosDesign, OspfAreasAndCoverage) {
  const auto design = ExtractJunosDesign(TwoRouters());
  const auto& r1 = design.routers[0];
  ASSERT_EQ(r1.processes.size(), 1u);
  EXPECT_EQ(r1.processes[0].protocol, "ospf");
  EXPECT_EQ(r1.processes[0].ospf_areas, (std::vector<int>{0}));
  EXPECT_EQ(r1.processes[0].covered_interfaces,
            (std::vector<std::string>{"lo0", "so-0/0"}));
}

TEST(JunosDesign, BgpGroupsAndNeighbors) {
  const auto design = ExtractJunosDesign(TwoRouters());
  const auto& r1 = design.routers[0];
  ASSERT_TRUE(r1.bgp_asn.has_value());
  EXPECT_EQ(*r1.bgp_asn, 2001u);
  ASSERT_EQ(r1.bgp_neighbors.size(), 2u);
  EXPECT_TRUE(r1.bgp_neighbors[0].external);
  EXPECT_EQ(r1.bgp_neighbors[0].remote_asn, 701u);
  EXPECT_EQ(r1.bgp_neighbors[0].import_map, "PEER-in");
  EXPECT_EQ(r1.bgp_neighbors[0].export_map, "PEER-out");
  EXPECT_FALSE(r1.bgp_neighbors[1].external);
  EXPECT_EQ(r1.bgp_neighbors[1].remote_asn, 2001u);
}

TEST(JunosDesign, LinksAndSessions) {
  const auto design = ExtractJunosDesign(TwoRouters());
  ASSERT_EQ(design.links.size(), 1u);
  EXPECT_EQ(design.links[0].subnet.ToString(), "10.0.0.0/30");
  EXPECT_EQ(design.links[0].interface_a, "so-0/0");
  EXPECT_EQ(design.links[0].interface_b, "so-1/0");
  // Sessions: one internal symmetric (loopbacks), one external. The
  // external session sorts first (its router_b is empty).
  ASSERT_EQ(design.bgp_sessions.size(), 2u);
  EXPECT_TRUE(design.bgp_sessions[0].external);
  EXPECT_EQ(design.bgp_sessions[0].external_peer.ToString(), "6.6.6.2");
  EXPECT_FALSE(design.bgp_sessions[1].external);
  EXPECT_TRUE(design.bgp_sessions[1].symmetric);
}

TEST(JunosDesign, PolicyTermsAndReferences) {
  const auto design = ExtractJunosDesign(TwoRouters());
  const auto& r1 = design.routers[0];
  const auto& in_clauses = r1.route_maps.at("PEER-in");
  ASSERT_EQ(in_clauses.size(), 2u);
  EXPECT_FALSE(in_clauses[0].permit);
  EXPECT_EQ(in_clauses[0].sequence, 10);
  EXPECT_EQ(in_clauses[0].references,
            (std::vector<std::pair<std::string, std::string>>{
                {"as-path", "aspath-50"}}));
  EXPECT_TRUE(in_clauses[1].permit);
  EXPECT_EQ(in_clauses[1].references,
            (std::vector<std::pair<std::string, std::string>>{
                {"community", "comm-100"}}));
  const auto& out_clauses = r1.route_maps.at("PEER-out");
  EXPECT_EQ(out_clauses[0].references,
            (std::vector<std::pair<std::string, std::string>>{
                {"prefix-list", "CUST"}}));
  ASSERT_TRUE(r1.prefix_lists.contains("CUST"));
  EXPECT_EQ(r1.prefix_lists.at("CUST")[0].prefix.ToString(), "10.1.0.0/24");
}

TEST(JunosDesign, GeneratedNetworkRoundTrip) {
  // The writer and the extractor must agree on structure: links recovered
  // from a generated JunOS corpus match the generator's topology counts.
  gen::GeneratorParams params;
  params.seed = 31;
  params.router_count = 14;
  const auto network = gen::GenerateNetwork(params, 0);
  const auto configs = WriteJunosNetworkConfigs(network);
  const auto design = ExtractJunosDesign(configs);
  EXPECT_EQ(design.routers.size(), network.routers.size());
  std::size_t speakers = 0;
  for (const auto& router : design.routers) {
    speakers += router.bgp_asn.has_value();
  }
  EXPECT_EQ(speakers, network.truth.bgp_speaker_count);
  EXPECT_FALSE(design.links.empty());
}

class JunosValidation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(JunosValidation, DesignSurvivesAnonymization) {
  gen::GeneratorParams params;
  params.seed = GetParam();
  params.router_count = 12 + static_cast<int>(GetParam() % 3) * 6;
  if (GetParam() % 2 == 0) {
    params.p_alternation_regex = 1.0;
    params.p_community_regex = 1.0;
  }
  const auto network = gen::GenerateNetwork(params, 0);
  const auto pre = WriteJunosNetworkConfigs(network);

  JunosAnonymizerOptions options;
  options.salt = "junos-val-" + std::to_string(GetParam());
  JunosAnonymizer anonymizer(std::move(options));
  const auto post = anonymizer.AnonymizeNetwork(pre);

  const analysis::ValidationResult result =
      ValidateJunosNetwork(pre, post, anonymizer);
  EXPECT_TRUE(result.design_match)
      << (result.design_diffs.empty() ? "" : result.design_diffs[0]);
  EXPECT_TRUE(result.structural_match)
      << (result.structural_diffs.empty() ? "" : result.structural_diffs[0]);
  EXPECT_TRUE(result.characteristics_match);
}

INSTANTIATE_TEST_SUITE_P(Seeds, JunosValidation,
                         ::testing::Values(11, 12, 13, 14, 15, 16));

}  // namespace
}  // namespace confanon::junos
