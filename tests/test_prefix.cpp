#include "net/prefix.h"

#include <gtest/gtest.h>

#include "net/special.h"

namespace confanon::net {
namespace {

TEST(Prefix, CanonicalizesHostBits) {
  const Prefix p(*Ipv4Address::Parse("10.1.2.3"), 24);
  EXPECT_EQ(p.address().ToString(), "10.1.2.0");
  EXPECT_EQ(p.length(), 24);
  EXPECT_EQ(p.ToString(), "10.1.2.0/24");
}

TEST(Prefix, ParseValid) {
  const auto p = Prefix::Parse("1.1.1.0/24");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->ToString(), "1.1.1.0/24");
  EXPECT_EQ(Prefix::Parse("0.0.0.0/0")->length(), 0);
  EXPECT_EQ(Prefix::Parse("1.2.3.4/32")->ToString(), "1.2.3.4/32");
}

TEST(Prefix, ParseRejects) {
  EXPECT_FALSE(Prefix::Parse("1.1.1.0"));
  EXPECT_FALSE(Prefix::Parse("1.1.1.0/33"));
  EXPECT_FALSE(Prefix::Parse("1.1.1.0/"));
  EXPECT_FALSE(Prefix::Parse("1.1.1/24"));
  EXPECT_FALSE(Prefix::Parse("/24"));
  EXPECT_FALSE(Prefix::Parse("1.1.1.0/24/8"));
  EXPECT_FALSE(Prefix::Parse("1.1.1.0/2a"));
}

TEST(Prefix, FromAddressAndMask) {
  const auto p = Prefix::FromAddressAndMask(*Ipv4Address::Parse("1.1.1.1"),
                                            *Ipv4Address::Parse("255.255.255.0"));
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->ToString(), "1.1.1.0/24");
  EXPECT_FALSE(Prefix::FromAddressAndMask(*Ipv4Address::Parse("1.1.1.1"),
                                          *Ipv4Address::Parse("255.0.255.0")));
}

TEST(Prefix, ClassfulNetworkOf) {
  EXPECT_EQ(Prefix::ClassfulNetworkOf(*Ipv4Address::Parse("10.1.2.3"))
                ->ToString(),
            "10.0.0.0/8");
  EXPECT_EQ(Prefix::ClassfulNetworkOf(*Ipv4Address::Parse("172.16.1.1"))
                ->ToString(),
            "172.16.0.0/16");
  EXPECT_EQ(Prefix::ClassfulNetworkOf(*Ipv4Address::Parse("192.168.3.4"))
                ->ToString(),
            "192.168.3.0/24");
  EXPECT_FALSE(Prefix::ClassfulNetworkOf(*Ipv4Address::Parse("224.0.0.1")));
  EXPECT_FALSE(Prefix::ClassfulNetworkOf(*Ipv4Address::Parse("250.0.0.1")));
}

TEST(Prefix, ContainsAddress) {
  const Prefix p = *Prefix::Parse("10.1.0.0/16");
  EXPECT_TRUE(p.Contains(*Ipv4Address::Parse("10.1.0.0")));
  EXPECT_TRUE(p.Contains(*Ipv4Address::Parse("10.1.255.255")));
  EXPECT_FALSE(p.Contains(*Ipv4Address::Parse("10.2.0.0")));
  EXPECT_FALSE(p.Contains(*Ipv4Address::Parse("11.1.0.0")));
}

TEST(Prefix, ContainsPrefix) {
  const Prefix p = *Prefix::Parse("10.1.0.0/16");
  EXPECT_TRUE(p.Contains(*Prefix::Parse("10.1.4.0/24")));
  EXPECT_TRUE(p.Contains(p));
  EXPECT_FALSE(p.Contains(*Prefix::Parse("10.0.0.0/8")));  // less specific
  EXPECT_FALSE(p.Contains(*Prefix::Parse("10.2.0.0/24")));
}

TEST(Prefix, ZeroLengthContainsEverything) {
  const Prefix all = *Prefix::Parse("0.0.0.0/0");
  EXPECT_TRUE(all.Contains(*Ipv4Address::Parse("255.255.255.255")));
  EXPECT_TRUE(all.Contains(*Prefix::Parse("10.0.0.0/8")));
}

TEST(Prefix, IsSubnetAddressOf) {
  const Prefix p = *Prefix::Parse("10.1.2.0/24");
  EXPECT_TRUE(p.IsSubnetAddressOf(*Ipv4Address::Parse("10.1.2.0")));
  EXPECT_FALSE(p.IsSubnetAddressOf(*Ipv4Address::Parse("10.1.2.1")));
  EXPECT_FALSE(p.IsSubnetAddressOf(*Ipv4Address::Parse("10.1.3.0")));
}

TEST(Prefix, TrailingZeroBits) {
  EXPECT_EQ(TrailingZeroBits(*Ipv4Address::Parse("10.1.2.0")), 9);
  EXPECT_EQ(TrailingZeroBits(*Ipv4Address::Parse("10.1.0.0")), 16);
  EXPECT_EQ(TrailingZeroBits(*Ipv4Address::Parse("0.0.0.0")), 32);
  EXPECT_EQ(TrailingZeroBits(*Ipv4Address::Parse("1.2.3.5")), 0);
}

TEST(Prefix, LooksLikeSubnetAddress) {
  EXPECT_TRUE(LooksLikeSubnetAddress(*Ipv4Address::Parse("10.1.2.0")));
  EXPECT_TRUE(LooksLikeSubnetAddress(*Ipv4Address::Parse("10.1.2.4")));
  EXPECT_FALSE(LooksLikeSubnetAddress(*Ipv4Address::Parse("10.1.2.1")));
  EXPECT_TRUE(
      LooksLikeSubnetAddress(*Ipv4Address::Parse("10.0.0.0"), 24));
  EXPECT_FALSE(
      LooksLikeSubnetAddress(*Ipv4Address::Parse("10.1.0.0"), 24));
}

struct SpecialCase {
  const char* text;
  SpecialKind expected;
};
class SpecialClassify : public ::testing::TestWithParam<SpecialCase> {};

TEST_P(SpecialClassify, Classifies) {
  const auto addr = Ipv4Address::Parse(GetParam().text);
  ASSERT_TRUE(addr.has_value());
  EXPECT_EQ(ClassifySpecial(*addr), GetParam().expected) << GetParam().text;
}

INSTANTIATE_TEST_SUITE_P(
    Taxonomy, SpecialClassify,
    ::testing::Values(
        SpecialCase{"255.255.255.0", SpecialKind::kNetmaskLike},
        SpecialCase{"255.255.255.252", SpecialKind::kNetmaskLike},
        SpecialCase{"0.0.0.255", SpecialKind::kNetmaskLike},
        SpecialCase{"0.0.0.0", SpecialKind::kNetmaskLike},
        SpecialCase{"255.255.255.255", SpecialKind::kNetmaskLike},
        SpecialCase{"128.0.0.0", SpecialKind::kNetmaskLike},
        SpecialCase{"224.0.0.5", SpecialKind::kMulticast},
        SpecialCase{"239.1.2.3", SpecialKind::kMulticast},
        SpecialCase{"240.0.0.1", SpecialKind::kReservedE},
        SpecialCase{"127.0.0.1", SpecialKind::kLoopback},
        SpecialCase{"127.200.1.2", SpecialKind::kLoopback},
        SpecialCase{"0.1.2.3", SpecialKind::kThisNetwork},
        SpecialCase{"10.0.0.1", SpecialKind::kNotSpecial},
        SpecialCase{"192.168.1.1", SpecialKind::kNotSpecial},
        SpecialCase{"4.2.2.2", SpecialKind::kNotSpecial}));

TEST(Special, IsSpecialAgreesWithKind) {
  EXPECT_TRUE(IsSpecial(*Ipv4Address::Parse("255.0.0.0")));
  EXPECT_FALSE(IsSpecial(*Ipv4Address::Parse("12.34.56.78")));
}

TEST(Special, KindNamesDistinct) {
  EXPECT_NE(SpecialKindName(SpecialKind::kNetmaskLike),
            SpecialKindName(SpecialKind::kMulticast));
  EXPECT_EQ(SpecialKindName(SpecialKind::kNotSpecial), "not-special");
}

}  // namespace
}  // namespace confanon::net
