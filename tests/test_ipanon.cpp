#include "ipanon/ip_anonymizer.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>

#include "ipanon/cryptopan.h"
#include "net/prefix.h"
#include "net/special.h"
#include "util/rng.h"

namespace confanon::ipanon {
namespace {

net::Ipv4Address Addr(const char* text) {
  return *net::Ipv4Address::Parse(text);
}

std::vector<net::Ipv4Address> RandomNonSpecial(std::uint64_t seed, int count) {
  util::Rng rng(seed);
  std::vector<net::Ipv4Address> addresses;
  while (static_cast<int>(addresses.size()) < count) {
    const net::Ipv4Address a(static_cast<std::uint32_t>(rng.Next()));
    if (!net::IsSpecial(a)) addresses.push_back(a);
  }
  return addresses;
}

TEST(IpAnonymizer, DeterministicForSalt) {
  IpAnonymizer a("salt-1");
  IpAnonymizer b("salt-1");
  for (const auto& addr : RandomNonSpecial(1, 200)) {
    EXPECT_EQ(a.Map(addr), b.Map(addr));
  }
}

TEST(IpAnonymizer, DifferentSaltsDiffer) {
  IpAnonymizer a("salt-1");
  IpAnonymizer b("salt-2");
  int differing = 0;
  for (const auto& addr : RandomNonSpecial(2, 100)) {
    if (a.Map(addr) != b.Map(addr)) ++differing;
  }
  EXPECT_GT(differing, 90);
}

TEST(IpAnonymizer, MapIsIdempotentPerAddress) {
  IpAnonymizer anon("salt");
  const auto addr = Addr("12.34.56.78");
  const auto first = anon.Map(addr);
  EXPECT_EQ(anon.Map(addr), first);
  EXPECT_EQ(anon.Map(addr), first);
}

TEST(IpAnonymizer, PrefixPreservationProperty) {
  // The headline invariant: common prefix lengths are preserved exactly
  // (for non-walked pairs; walking is astronomically rare at this sample
  // size and checked separately).
  IpAnonymizer anon("prefix-salt");
  const auto addresses = RandomNonSpecial(3, 300);
  std::vector<net::Ipv4Address> mapped;
  std::vector<bool> walked;
  for (const auto& addr : addresses) {
    mapped.push_back(anon.Map(addr));
    walked.push_back(anon.LastMapWalked());
  }
  for (std::size_t i = 0; i < addresses.size(); ++i) {
    for (std::size_t j = i + 1; j < addresses.size(); ++j) {
      if (walked[i] || walked[j]) continue;
      EXPECT_EQ(net::CommonPrefixLength(addresses[i], addresses[j]),
                net::CommonPrefixLength(mapped[i], mapped[j]))
          << addresses[i].ToString() << " / " << addresses[j].ToString();
    }
  }
}

TEST(IpAnonymizer, ClassPreservation) {
  IpAnonymizer anon("class-salt");
  for (const auto& addr : RandomNonSpecial(4, 500)) {
    const auto mapped = anon.Map(addr);
    EXPECT_EQ(static_cast<int>(addr.GetClass()),
              static_cast<int>(mapped.GetClass()))
        << addr.ToString() << " -> " << mapped.ToString();
  }
}

TEST(IpAnonymizer, SpecialAddressesPassThrough) {
  IpAnonymizer anon("special-salt");
  for (const char* text :
       {"255.255.255.0", "255.255.255.252", "0.0.0.255", "0.0.0.0",
        "255.255.255.255", "224.0.0.5", "239.1.2.3", "240.0.0.1",
        "127.0.0.1", "0.1.2.3", "128.0.0.0"}) {
    EXPECT_EQ(anon.Map(Addr(text)), Addr(text)) << text;
  }
}

TEST(IpAnonymizer, NeverMapsIntoSpecialSet) {
  IpAnonymizer anon("collision-salt");
  for (const auto& addr : RandomNonSpecial(5, 2000)) {
    EXPECT_FALSE(net::IsSpecial(anon.Map(addr)))
        << addr.ToString() << " -> " << anon.Map(addr).ToString();
  }
}

TEST(IpAnonymizer, InjectiveOnSample) {
  IpAnonymizer anon("inject-salt");
  std::map<std::uint32_t, net::Ipv4Address> image;
  for (const auto& addr : RandomNonSpecial(6, 3000)) {
    const auto mapped = anon.Map(addr);
    const auto [it, inserted] = image.emplace(mapped.value(), addr);
    EXPECT_TRUE(inserted || it->second == addr)
        << "collision: " << it->second.ToString() << " and "
        << addr.ToString() << " both -> " << mapped.ToString();
  }
}

TEST(IpAnonymizer, RawMapIsBijectiveOnDenseRange) {
  IpAnonymizer anon("biject-salt");
  std::set<std::uint32_t> outputs;
  // A dense /20 exercises deep shared trie paths.
  const std::uint32_t base = Addr("12.34.0.0").value();
  for (std::uint32_t offset = 0; offset < 4096; ++offset) {
    outputs.insert(anon.MapRaw(net::Ipv4Address(base + offset)).value());
  }
  EXPECT_EQ(outputs.size(), 4096u);
}

TEST(IpAnonymizer, SubnetAddressesPreservedWithPreload) {
  IpAnonymizer anon("subnet-salt");
  std::vector<net::Ipv4Address> addresses;
  util::Rng rng(7);
  // Subnet addresses of various sizes plus host addresses inside them.
  for (int i = 0; i < 120; ++i) {
    const int host_bits = static_cast<int>(rng.Between(2, 12));
    std::uint32_t base = static_cast<std::uint32_t>(rng.Next());
    base &= ~((1u << host_bits) - 1);
    const net::Ipv4Address subnet(base);
    if (net::IsSpecial(subnet)) continue;
    addresses.push_back(subnet);
    const net::Ipv4Address host(base + 1);
    if (!net::IsSpecial(host)) addresses.push_back(host);
  }
  anon.Preload(addresses);
  for (const auto& addr : addresses) {
    const int zeros = net::TrailingZeroBits(addr);
    if (zeros < 2) continue;
    const auto mapped = anon.Map(addr);
    EXPECT_GE(net::TrailingZeroBits(mapped), zeros)
        << addr.ToString() << " -> " << mapped.ToString();
  }
}

TEST(IpAnonymizer, SubnetContainsRelationSurvives) {
  // The RIP network statement / interface address relation of Figure 1.
  IpAnonymizer anon("contains-salt");
  const auto network = Addr("1.0.0.0");   // classful A network
  const auto iface = Addr("1.1.1.1");
  anon.Preload({network, iface});
  const auto mapped_network = anon.Map(network);
  const auto mapped_iface = anon.Map(iface);
  EXPECT_TRUE(net::Prefix(mapped_network, 8).Contains(mapped_iface));
}

TEST(IpAnonymizer, ExportImportReproducesMapping) {
  IpAnonymizer original("export-salt");
  const auto addresses = RandomNonSpecial(8, 150);
  std::vector<net::Ipv4Address> mapped;
  for (const auto& addr : addresses) {
    mapped.push_back(original.Map(addr));
  }
  std::stringstream stream;
  original.ExportMappings(stream);

  IpAnonymizer replica("completely-different-salt");
  replica.ImportMappings(stream);
  for (std::size_t i = 0; i < addresses.size(); ++i) {
    EXPECT_EQ(replica.Map(addresses[i]), mapped[i]);
  }
}

TEST(IpAnonymizer, ImportRejectsMalformed) {
  IpAnonymizer anon("import-salt");
  std::stringstream bad1("1.2.3.4\n");
  EXPECT_THROW(anon.ImportMappings(bad1), std::runtime_error);
  std::stringstream bad2("1.2.3.4 not-an-address\n");
  EXPECT_THROW(anon.ImportMappings(bad2), std::runtime_error);
}

TEST(IpAnonymizer, ImportRejectsConflictingPairs) {
  IpAnonymizer anon("conflict-salt");
  std::stringstream first("12.0.0.1 99.0.0.1\n");
  anon.ImportMappings(first);
  std::stringstream conflict("12.0.0.1 99.0.0.2\n");
  EXPECT_THROW(anon.ImportMappings(conflict), std::runtime_error);
}

TEST(IpAnonymizer, NodeCountGrowsSublinearlyWithSharedPrefixes) {
  IpAnonymizer anon("growth-salt");
  const std::uint32_t base = Addr("10.1.0.0").value();
  for (std::uint32_t i = 0; i < 256; ++i) {
    anon.Map(net::Ipv4Address(base + i));
  }
  // 256 addresses sharing a /24: roughly 24 shared nodes + 256 subtree
  // nodes, far fewer than 256 * 32.
  EXPECT_LT(anon.NodeCount(), 1200u);
}

TEST(IpAnonymizer, CollisionWalkActuallyOccursAndStaysSafe) {
  // Class-A inputs can map onto loopback (127/8) or 0/8 outputs with
  // probability ~2/128 each; across a few thousand addresses the
  // cycle-walking path of Section 4.3 must fire at least once, and every
  // walked result must still be non-special and injective.
  IpAnonymizer anon("walk-salt");
  util::Rng rng(515);
  int walked = 0;
  std::set<std::uint32_t> outputs;
  for (int i = 0; i < 4000; ++i) {
    // Class A, non-special inputs.
    std::uint32_t value =
        static_cast<std::uint32_t>(rng.Next()) & 0x7FFFFFFFu;
    net::Ipv4Address address(value);
    if (net::IsSpecial(address)) continue;
    const net::Ipv4Address mapped = anon.Map(address);
    if (anon.LastMapWalked()) ++walked;
    EXPECT_FALSE(net::IsSpecial(mapped));
    EXPECT_TRUE(outputs.insert(mapped.value()).second)
        << mapped.ToString() << " duplicated";
  }
  EXPECT_GT(walked, 0) << "collision walk never exercised";
}

// --- CryptoPan baseline ---

TEST(CryptoPan, Deterministic) {
  const CryptoPan a("key");
  const CryptoPan b("key");
  for (const auto& addr : RandomNonSpecial(9, 100)) {
    EXPECT_EQ(a.Map(addr), b.Map(addr));
  }
}

TEST(CryptoPan, PrefixPreservationProperty) {
  const CryptoPan pan("prefix-key");
  const auto addresses = RandomNonSpecial(10, 200);
  std::vector<net::Ipv4Address> mapped;
  for (const auto& addr : addresses) {
    mapped.push_back(pan.Map(addr));
  }
  for (std::size_t i = 0; i < addresses.size(); ++i) {
    for (std::size_t j = i + 1; j < addresses.size(); ++j) {
      EXPECT_EQ(net::CommonPrefixLength(addresses[i], addresses[j]),
                net::CommonPrefixLength(mapped[i], mapped[j]));
    }
  }
}

TEST(CryptoPan, StatelessInstancesAgree) {
  // The property the paper credits Xu's scheme with: no shared data
  // structure is needed for two parties to map consistently.
  const CryptoPan a("shared-key");
  const CryptoPan b("shared-key");
  EXPECT_EQ(a.Map(Addr("4.5.6.7")), b.Map(Addr("4.5.6.7")));
}

TEST(CryptoPan, IsNotClassPreserving) {
  // The ablation: the pure cryptographic scheme violates the class and
  // special-address requirements, which is why the paper chose the
  // shapeable data-structure scheme.
  const CryptoPan pan("ablation-key");
  int class_violations = 0;
  int special_images = 0;
  for (const auto& addr : RandomNonSpecial(11, 500)) {
    const auto mapped = pan.Map(addr);
    if (addr.GetClass() != mapped.GetClass()) ++class_violations;
    if (net::IsSpecial(mapped)) ++special_images;
  }
  EXPECT_GT(class_violations, 0);
  EXPECT_GT(special_images + class_violations, 0);
}

}  // namespace
}  // namespace confanon::ipanon
