#include "net/ipv4.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace confanon::net {
namespace {

TEST(Ipv4Address, ParseValid) {
  const auto addr = Ipv4Address::Parse("1.2.3.4");
  ASSERT_TRUE(addr.has_value());
  EXPECT_EQ(addr->value(), 0x01020304u);
  EXPECT_EQ(addr->ToString(), "1.2.3.4");
}

TEST(Ipv4Address, ParseBoundaries) {
  EXPECT_EQ(Ipv4Address::Parse("0.0.0.0")->value(), 0u);
  EXPECT_EQ(Ipv4Address::Parse("255.255.255.255")->value(), 0xFFFFFFFFu);
}

TEST(Ipv4Address, ParseLeadingZerosAccepted) {
  // Configs contain zero-padded octets; they must parse.
  EXPECT_EQ(Ipv4Address::Parse("010.001.000.001")->value(), 0x0A010001u);
}

struct BadAddressCase {
  const char* text;
};
class Ipv4ParseRejects : public ::testing::TestWithParam<BadAddressCase> {};

TEST_P(Ipv4ParseRejects, Rejects) {
  EXPECT_FALSE(Ipv4Address::Parse(GetParam().text).has_value())
      << GetParam().text;
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, Ipv4ParseRejects,
    ::testing::Values(BadAddressCase{""}, BadAddressCase{"1.2.3"},
                      BadAddressCase{"1.2.3.4.5"}, BadAddressCase{"256.1.1.1"},
                      BadAddressCase{"1.2.3.256"}, BadAddressCase{"a.b.c.d"},
                      BadAddressCase{"1.2.3.4 "}, BadAddressCase{" 1.2.3.4"},
                      BadAddressCase{"1..3.4"}, BadAddressCase{"1.2.3."},
                      BadAddressCase{".1.2.3"}, BadAddressCase{"1.2.3.0405"},
                      BadAddressCase{"1,2,3,4"}, BadAddressCase{"1.2.3.4/24"}));

TEST(Ipv4Address, Octets) {
  const Ipv4Address addr(0xC0A80102u);  // 192.168.1.2
  EXPECT_EQ(addr.Octet(0), 192);
  EXPECT_EQ(addr.Octet(1), 168);
  EXPECT_EQ(addr.Octet(2), 1);
  EXPECT_EQ(addr.Octet(3), 2);
}

TEST(Ipv4Address, Bits) {
  const Ipv4Address addr(0x80000001u);
  EXPECT_TRUE(addr.Bit(0));
  EXPECT_FALSE(addr.Bit(1));
  EXPECT_TRUE(addr.Bit(31));
}

struct ClassCase {
  const char* text;
  AddrClass expected;
};
class Ipv4ClassTest : public ::testing::TestWithParam<ClassCase> {};

TEST_P(Ipv4ClassTest, Classifies) {
  const auto addr = Ipv4Address::Parse(GetParam().text);
  ASSERT_TRUE(addr.has_value());
  EXPECT_EQ(addr->GetClass(), GetParam().expected) << GetParam().text;
}

INSTANTIATE_TEST_SUITE_P(
    Classful, Ipv4ClassTest,
    ::testing::Values(ClassCase{"0.0.0.0", AddrClass::kA},
                      ClassCase{"10.0.0.1", AddrClass::kA},
                      ClassCase{"127.255.255.255", AddrClass::kA},
                      ClassCase{"128.0.0.0", AddrClass::kB},
                      ClassCase{"172.16.5.4", AddrClass::kB},
                      ClassCase{"191.255.0.0", AddrClass::kB},
                      ClassCase{"192.0.0.1", AddrClass::kC},
                      ClassCase{"223.255.255.255", AddrClass::kC},
                      ClassCase{"224.0.0.5", AddrClass::kD},
                      ClassCase{"239.255.255.255", AddrClass::kD},
                      ClassCase{"240.0.0.1", AddrClass::kE},
                      ClassCase{"255.255.255.255", AddrClass::kE}));

TEST(Ipv4Address, ClassfulNetworkBits) {
  EXPECT_EQ(ClassfulNetworkBits(AddrClass::kA), 8);
  EXPECT_EQ(ClassfulNetworkBits(AddrClass::kB), 16);
  EXPECT_EQ(ClassfulNetworkBits(AddrClass::kC), 24);
}

TEST(Netmask, RecognizesContiguousMasks) {
  for (int length = 0; length <= 32; ++length) {
    const Ipv4Address mask = PrefixLengthToNetmask(length);
    EXPECT_TRUE(IsNetmask(mask)) << length;
    EXPECT_EQ(NetmaskToPrefixLength(mask), length);
  }
}

TEST(Netmask, RejectsNonContiguous) {
  EXPECT_FALSE(IsNetmask(*Ipv4Address::Parse("255.0.255.0")));
  EXPECT_FALSE(IsNetmask(*Ipv4Address::Parse("255.255.255.1")));
  EXPECT_FALSE(IsNetmask(*Ipv4Address::Parse("1.2.3.4")));
  EXPECT_FALSE(NetmaskToPrefixLength(*Ipv4Address::Parse("1.2.3.4")));
}

TEST(WildcardMask, Recognizes) {
  EXPECT_TRUE(IsWildcardMask(*Ipv4Address::Parse("0.0.0.255")));
  EXPECT_TRUE(IsWildcardMask(*Ipv4Address::Parse("0.0.255.255")));
  EXPECT_TRUE(IsWildcardMask(*Ipv4Address::Parse("0.0.0.0")));
  EXPECT_TRUE(IsWildcardMask(*Ipv4Address::Parse("255.255.255.255")));
  EXPECT_TRUE(IsWildcardMask(*Ipv4Address::Parse("0.0.0.3")));
  EXPECT_FALSE(IsWildcardMask(*Ipv4Address::Parse("0.0.0.254")));
  EXPECT_FALSE(IsWildcardMask(*Ipv4Address::Parse("0.255.0.255")));
}

TEST(CommonPrefixLength, Basics) {
  const auto a = *Ipv4Address::Parse("10.0.0.0");
  EXPECT_EQ(CommonPrefixLength(a, a), 32);
  EXPECT_EQ(CommonPrefixLength(*Ipv4Address::Parse("10.0.0.0"),
                               *Ipv4Address::Parse("10.0.0.1")),
            31);
  EXPECT_EQ(CommonPrefixLength(*Ipv4Address::Parse("10.0.0.0"),
                               *Ipv4Address::Parse("10.1.0.0")),
            15);
  EXPECT_EQ(CommonPrefixLength(*Ipv4Address::Parse("0.0.0.0"),
                               *Ipv4Address::Parse("128.0.0.0")),
            0);
}

TEST(CommonPrefixLength, RandomPairsSymmetric) {
  util::Rng rng(77);
  for (int i = 0; i < 500; ++i) {
    const Ipv4Address a(static_cast<std::uint32_t>(rng.Next()));
    const Ipv4Address b(static_cast<std::uint32_t>(rng.Next()));
    EXPECT_EQ(CommonPrefixLength(a, b), CommonPrefixLength(b, a));
  }
}

TEST(Ipv4Address, RoundTripRandom) {
  util::Rng rng(78);
  for (int i = 0; i < 500; ++i) {
    const Ipv4Address a(static_cast<std::uint32_t>(rng.Next()));
    const auto reparsed = Ipv4Address::Parse(a.ToString());
    ASSERT_TRUE(reparsed.has_value());
    EXPECT_EQ(*reparsed, a);
  }
}

}  // namespace
}  // namespace confanon::net
