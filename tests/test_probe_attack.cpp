#include "analysis/probe_attack.h"

#include <gtest/gtest.h>

#include "analysis/design_extract.h"
#include "gen/config_writer.h"
#include "gen/network_gen.h"

namespace confanon::analysis {
namespace {

config::ConfigFile File(std::string_view text) {
  return config::ConfigFile::FromText("r", text);
}

NetworkDesign TwoSubnetDesign() {
  return ExtractDesign({File(R"(hostname r
interface Ethernet0
 ip address 10.1.0.1 255.255.255.0
interface Ethernet1
 ip address 10.2.0.1 255.255.255.240
)")});
}

TEST(ProbeAttack, TrueFingerprintMatchesDesign) {
  ProbeAttackOptions options;
  options.seed = 1;
  const ProbeAttackResult result =
      SimulateProbeSweep(TwoSubnetDesign(), options);
  EXPECT_EQ(result.true_fingerprint.Get(24), 1u);
  EXPECT_EQ(result.true_fingerprint.Get(28), 1u);
  EXPECT_EQ(result.true_fingerprint.Total(), 2u);
}

TEST(ProbeAttack, CleanSweepRecoversSubnetCount) {
  ProbeAttackOptions options;
  options.seed = 7;
  options.occupancy = 0.5;
  options.loss = 0.0;
  const ProbeAttackResult result =
      SimulateProbeSweep(TwoSubnetDesign(), options);
  // Two well-separated subnets -> two estimated runs.
  EXPECT_EQ(result.estimated_fingerprint.Total(), 2u);
  EXPECT_GT(result.responders, 0u);
  EXPECT_GT(result.probes, result.responders);
}

TEST(ProbeAttack, EstimatedSizesNeverSmallerThanHostRuns) {
  // The power-of-two rounding can only over- or exactly estimate a run,
  // so the estimated prefix length is <= the true length when the subnet
  // is densely occupied.
  ProbeAttackOptions options;
  options.seed = 11;
  options.occupancy = 0.9;
  const ProbeAttackResult result =
      SimulateProbeSweep(TwoSubnetDesign(), options);
  for (int bucket : result.estimated_fingerprint.Buckets()) {
    EXPECT_GE(bucket, 23);
    EXPECT_LE(bucket, 31);
  }
}

TEST(ProbeAttack, LossIncreasesError) {
  gen::GeneratorParams params;
  params.seed = 99;
  params.router_count = 14;
  const auto design =
      ExtractDesign(gen::WriteNetworkConfigs(gen::GenerateNetwork(params, 0)));
  double previous = -1;
  for (double loss : {0.0, 0.3, 0.7}) {
    double error = 0;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      ProbeAttackOptions options;
      options.seed = seed;
      options.occupancy = 0.4;
      options.loss = loss;
      error += SimulateProbeSweep(design, options).RelativeError();
    }
    EXPECT_GE(error + 1e-9, previous);
    previous = error;
  }
}

TEST(ProbeAttack, Deterministic) {
  const auto design = TwoSubnetDesign();
  ProbeAttackOptions options;
  options.seed = 42;
  options.loss = 0.2;
  const auto a = SimulateProbeSweep(design, options);
  const auto b = SimulateProbeSweep(design, options);
  EXPECT_TRUE(a.estimated_fingerprint == b.estimated_fingerprint);
  EXPECT_EQ(a.responders, b.responders);
}

TEST(ProbeAttack, EmptyDesign) {
  const ProbeAttackResult result =
      SimulateProbeSweep(NetworkDesign{}, ProbeAttackOptions{});
  EXPECT_EQ(result.probes, 0u);
  EXPECT_EQ(result.true_fingerprint.Total(), 0u);
  EXPECT_EQ(result.estimated_fingerprint.Total(), 0u);
  EXPECT_DOUBLE_EQ(result.RelativeError(), 0.0);
}

}  // namespace
}  // namespace confanon::analysis
