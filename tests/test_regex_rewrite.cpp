#include "asn/regex_rewrite.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace confanon::asn {
namespace {

std::vector<std::uint32_t> Language(std::string_view pattern) {
  return TokenLanguage::Compile(pattern).Enumerate();
}

TEST(TokenLanguage, PaperExampleRange) {
  // Section 4.4: "70[1-3] accepts ASN 701, 702, and 703."
  EXPECT_EQ(Language("70[1-3]"),
            (std::vector<std::uint32_t>{701, 702, 703}));
}

TEST(TokenLanguage, AnchorsAndUnderscoreAcceptSameSingleton) {
  const std::vector<std::uint32_t> expected{701};
  EXPECT_EQ(Language("701"), expected);
  EXPECT_EQ(Language("^701$"), expected);
  EXPECT_EQ(Language("_701_"), expected);
  EXPECT_EQ(Language("^701"), expected);
  EXPECT_EQ(Language("701$"), expected);
}

TEST(TokenLanguage, DigitWildcard) {
  // 70.: 700-709 — a trailing wildcard digit.
  const auto language = Language("70[0-9]");
  ASSERT_EQ(language.size(), 10u);
  EXPECT_EQ(language.front(), 700u);
  EXPECT_EQ(language.back(), 709u);
  // "70." also accepts only 3-character tokens starting with 70.
  EXPECT_EQ(Language("70."), language);
}

TEST(TokenLanguage, Alternation) {
  EXPECT_EQ(Language("(_1239_|_70[2-5]_)"),
            (std::vector<std::uint32_t>{702, 703, 704, 705, 1239}));
  EXPECT_EQ(Language("(1|701)"), (std::vector<std::uint32_t>{1, 701}));
}

TEST(TokenLanguage, DotStarAcceptsEverything) {
  EXPECT_EQ(Language(".*").size(), 65536u);
  EXPECT_EQ(Language("^.*$").size(), 65536u);
}

TEST(TokenLanguage, PrivateRange) {
  EXPECT_EQ(Language("_6451[2-5]_"),
            (std::vector<std::uint32_t>{64512, 64513, 64514, 64515}));
}

TEST(TokenLanguage, EmptyLanguagePatterns) {
  // Tokens are at most 5 digits; a 7-digit literal accepts nothing.
  EXPECT_TRUE(Language("1234567").empty());
  EXPECT_TRUE(Language("70000").empty());  // above 65535
}

TEST(TokenLanguage, AcceptsAgreesWithEnumerate) {
  const TokenLanguage language = TokenLanguage::Compile("12[0-9]{2}");
  const auto members = language.Enumerate();
  EXPECT_EQ(members.size(), 100u);  // 1200-1299
  EXPECT_TRUE(language.Accepts(1234));
  EXPECT_FALSE(language.Accepts(123));
  EXPECT_FALSE(language.Accepts(13000));
}

TEST(RenderLanguage, SingleValueBare) {
  EXPECT_EQ(RenderLanguage({701}, RewriteForm::kAlternation), "701");
  EXPECT_EQ(RenderLanguage({701}, RewriteForm::kMinimizedDfa), "701");
}

TEST(RenderLanguage, AlternationForm) {
  EXPECT_EQ(RenderLanguage({13, 701, 1239}, RewriteForm::kAlternation),
            "(13|701|1239)");
}

TEST(RenderLanguage, MinimizedFormAcceptsSameLanguage) {
  const std::vector<std::uint32_t> values = {700, 701, 702, 703, 704,
                                             705, 706, 707, 708, 709};
  const std::string pattern =
      RenderLanguage(values, RewriteForm::kMinimizedDfa);
  EXPECT_EQ(Language(pattern), values);
}

TEST(FindTopLevelColon, Basics) {
  EXPECT_EQ(FindTopLevelColon("701:120"), 3u);
  EXPECT_EQ(FindTopLevelColon("701"), std::string_view::npos);
  EXPECT_EQ(FindTopLevelColon("[:]x"), std::string_view::npos);
  EXPECT_EQ(FindTopLevelColon("(a:b)"), std::string_view::npos);
  EXPECT_EQ(FindTopLevelColon("\\:x:y"), 3u);
  EXPECT_EQ(FindTopLevelColon("70[1-5]:7[1-5].."), 7u);
}

class RewriterTest : public ::testing::Test {
 protected:
  AsnMap asn_map_{"rewrite-salt"};
  Uint16Permutation values_{"rewrite-salt", "community-values"};
  AsnRegexRewriter rewriter_{asn_map_};
  CommunityRegexRewriter community_rewriter_{asn_map_, values_};
};

TEST_F(RewriterTest, PrivateOnlyLanguageUnchanged) {
  const RewriteResult result = rewriter_.Rewrite("_6451[2-5]_");
  EXPECT_FALSE(result.changed);
  EXPECT_EQ(result.pattern, "_6451[2-5]_");
  EXPECT_EQ(result.language_size, 4u);
  EXPECT_EQ(result.public_members, 0u);
}

TEST_F(RewriterTest, FullSpaceUnchanged) {
  const RewriteResult result = rewriter_.Rewrite(".*");
  EXPECT_FALSE(result.changed);
  EXPECT_EQ(result.pattern, ".*");
  EXPECT_EQ(result.language_size, 65536u);
}

TEST_F(RewriterTest, EmptyLanguageUnchanged) {
  const RewriteResult result = rewriter_.Rewrite("99999");
  EXPECT_FALSE(result.changed);
}

TEST_F(RewriterTest, PublicRangeRewritten) {
  const RewriteResult result = rewriter_.Rewrite("70[1-3]");
  EXPECT_TRUE(result.changed);
  EXPECT_EQ(result.public_members, 3u);
  // The rewritten pattern's language must be exactly the permuted set.
  std::vector<std::uint32_t> expected = {
      asn_map_.Map(701), asn_map_.Map(702), asn_map_.Map(703)};
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(Language(result.pattern), expected);
}

TEST_F(RewriterTest, LanguageEqualityPropertyAcrossForms) {
  for (const char* pattern :
       {"_70[1-5]_", "(_1239_|_70[2-5]_)", "^1$", "12[0-9]."}) {
    const RewriteResult alternation =
        rewriter_.Rewrite(pattern, RewriteForm::kAlternation);
    const RewriteResult minimized =
        rewriter_.Rewrite(pattern, RewriteForm::kMinimizedDfa);
    ASSERT_TRUE(alternation.changed) << pattern;
    ASSERT_TRUE(minimized.changed) << pattern;
    EXPECT_EQ(Language(alternation.pattern), Language(minimized.pattern))
        << pattern;
    // And both equal the permuted original language.
    std::vector<std::uint32_t> expected;
    for (std::uint32_t asn : Language(pattern)) {
      expected.push_back(asn_map_.Map(asn));
    }
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(Language(alternation.pattern), expected) << pattern;
  }
}

TEST_F(RewriterTest, MixedPublicPrivateRewritesBoth) {
  // 6451[0-3]: 64510, 64511 public; 64512, 64513 private (identity).
  const RewriteResult result = rewriter_.Rewrite("6451[0-3]");
  ASSERT_TRUE(result.changed);
  EXPECT_EQ(result.public_members, 2u);
  const auto language = Language(result.pattern);
  EXPECT_EQ(language.size(), 4u);
  EXPECT_TRUE(std::find(language.begin(), language.end(), 64512u) !=
              language.end());
  EXPECT_TRUE(std::find(language.begin(), language.end(), 64513u) !=
              language.end());
}

TEST_F(RewriterTest, CommunityRegexSplitAndRewrite) {
  // Figure 1 line 31: 701:7[1-5].. matches communities 7100-7599 from 701.
  const RewriteResult result = community_rewriter_.Rewrite("701:7[1-5]..");
  ASSERT_TRUE(result.changed);
  const std::size_t colon = FindTopLevelColon(result.pattern);
  ASSERT_NE(colon, std::string_view::npos);
  const auto asn_language =
      Language(std::string(result.pattern.substr(0, colon)));
  EXPECT_EQ(asn_language, (std::vector<std::uint32_t>{asn_map_.Map(701)}));
  const auto value_language =
      Language(std::string(result.pattern.substr(colon + 1)));
  ASSERT_EQ(value_language.size(), 500u);
  // Every mapped value corresponds to an original in 7100-7599.
  for (std::uint32_t v : value_language) {
    const std::uint32_t original = values_.Unmap(v);
    EXPECT_GE(original, 7100u);
    EXPECT_LE(original, 7599u);
  }
}

TEST_F(RewriterTest, CommunityRegexWithoutColonUntouched) {
  const RewriteResult result = community_rewriter_.Rewrite("7[0-9]+");
  EXPECT_FALSE(result.changed);
  EXPECT_EQ(result.pattern, "7[0-9]+");
}

TEST_F(RewriterTest, CommunityValueAlwaysAnonymized) {
  // Even a private-ASN community gets its value half anonymized
  // (conservative trade-off from Section 4.5).
  const RewriteResult result = community_rewriter_.Rewrite("65000:100");
  EXPECT_TRUE(result.changed);
  const std::size_t colon = FindTopLevelColon(result.pattern);
  EXPECT_EQ(result.pattern.substr(0, colon), "65000");
  EXPECT_EQ(result.pattern.substr(colon + 1),
            std::to_string(values_.Map(100)));
}

TEST_F(RewriterTest, DeterministicAcrossCalls) {
  EXPECT_EQ(rewriter_.Rewrite("70[1-3]").pattern,
            rewriter_.Rewrite("70[1-3]").pattern);
}

}  // namespace
}  // namespace confanon::asn
