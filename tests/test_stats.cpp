#include "util/stats.h"

#include <gtest/gtest.h>

namespace confanon::util {
namespace {

TEST(Summary, BasicMoments) {
  Summary s;
  s.AddAll({1, 2, 3, 4});
  EXPECT_EQ(s.Count(), 4u);
  EXPECT_DOUBLE_EQ(s.Min(), 1);
  EXPECT_DOUBLE_EQ(s.Max(), 4);
  EXPECT_DOUBLE_EQ(s.Mean(), 2.5);
}

TEST(Summary, NearestRankPercentiles) {
  Summary s;
  for (int i = 1; i <= 100; ++i) s.Add(i);
  EXPECT_DOUBLE_EQ(s.Percentile(25), 25);
  EXPECT_DOUBLE_EQ(s.Percentile(50), 50);
  EXPECT_DOUBLE_EQ(s.Percentile(90), 90);
  EXPECT_DOUBLE_EQ(s.Percentile(0), 1);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 100);
}

TEST(Summary, PercentileSingleSample) {
  Summary s;
  s.Add(42);
  EXPECT_DOUBLE_EQ(s.Percentile(25), 42);
  EXPECT_DOUBLE_EQ(s.Median(), 42);
}

TEST(Summary, PercentileSmallSampleNearestRank) {
  Summary s;
  s.AddAll({10, 20, 30});
  // ceil(0.25*3)=1 -> first element; ceil(0.5*3)=2 -> second.
  EXPECT_DOUBLE_EQ(s.Percentile(25), 10);
  EXPECT_DOUBLE_EQ(s.Percentile(50), 20);
  EXPECT_DOUBLE_EQ(s.Percentile(90), 30);
}

TEST(Summary, EmptyThrows) {
  Summary s;
  EXPECT_TRUE(s.Empty());
  EXPECT_THROW(s.Min(), std::logic_error);
  EXPECT_THROW(s.Mean(), std::logic_error);
  EXPECT_THROW(s.Percentile(50), std::logic_error);
}

TEST(Summary, StdDev) {
  Summary s;
  s.AddAll({2, 4, 4, 4, 5, 5, 7, 9});
  EXPECT_NEAR(s.StdDev(), 2.0, 1e-9);
  Summary one;
  one.Add(5);
  EXPECT_DOUBLE_EQ(one.StdDev(), 0.0);
}

TEST(Summary, AddAfterQueryResorts) {
  Summary s;
  s.AddAll({5, 1});
  EXPECT_DOUBLE_EQ(s.Min(), 1);
  s.Add(0.5);
  EXPECT_DOUBLE_EQ(s.Min(), 0.5);
}

TEST(Summary, DescribeMentionsCount) {
  Summary s;
  s.AddAll({1, 2, 3});
  EXPECT_NE(s.Describe().find("n=3"), std::string::npos);
  EXPECT_EQ(Summary().Describe(), "(empty)");
}

TEST(Histogram, AddAndGet) {
  Histogram h;
  h.Add(30);
  h.Add(30);
  h.Add(24, 5);
  EXPECT_EQ(h.Get(30), 2u);
  EXPECT_EQ(h.Get(24), 5u);
  EXPECT_EQ(h.Get(29), 0u);
  EXPECT_EQ(h.Total(), 7u);
}

TEST(Histogram, BucketsSorted) {
  Histogram h;
  h.Add(30);
  h.Add(8);
  h.Add(24);
  EXPECT_EQ(h.Buckets(), (std::vector<int>{8, 24, 30}));
}

TEST(Histogram, EqualityIsMultisetEquality) {
  Histogram a, b;
  a.Add(30, 2);
  b.Add(30);
  EXPECT_FALSE(a == b);
  b.Add(30);
  EXPECT_TRUE(a == b);
}

TEST(Histogram, L1Distance) {
  Histogram a, b;
  a.Add(24, 3);
  a.Add(30, 1);
  b.Add(24, 1);
  b.Add(28, 2);
  // |3-1| + |1-0| + |0-2| = 5
  EXPECT_EQ(Histogram::L1Distance(a, b), 5u);
  EXPECT_EQ(Histogram::L1Distance(a, a), 0u);
  EXPECT_EQ(Histogram::L1Distance(Histogram{}, b), 3u);
}

}  // namespace
}  // namespace confanon::util
