#include "regex/dfa.h"

#include <gtest/gtest.h>

#include "regex/parser.h"
#include "regex/regex.h"
#include "util/rng.h"

namespace confanon::regex {
namespace {

Dfa CompileToDfa(std::string_view pattern) {
  Ast ast;
  ParsePattern(pattern, ParseOptions{}, ast);
  return Dfa::FromNfa(Nfa::Build(ast));
}

TEST(Dfa, FullMatchLiteral) {
  const Dfa dfa = CompileToDfa("abc");
  EXPECT_TRUE(dfa.FullMatch("abc"));
  EXPECT_FALSE(dfa.FullMatch("ab"));
  EXPECT_FALSE(dfa.FullMatch("abcd"));
  EXPECT_FALSE(dfa.FullMatch(""));
}

TEST(Dfa, FullMatchStar) {
  const Dfa dfa = CompileToDfa("(ab)*");
  EXPECT_TRUE(dfa.FullMatch(""));
  EXPECT_TRUE(dfa.FullMatch("ab"));
  EXPECT_TRUE(dfa.FullMatch("abab"));
  EXPECT_FALSE(dfa.FullMatch("aba"));
}

TEST(Dfa, ByteClassesCompressAlphabet) {
  const Dfa dfa = CompileToDfa("[0-9]+");
  // Classes: digits, everything else (at minimum). Far fewer than 256.
  EXPECT_LE(dfa.NumClasses(), 4);
  EXPECT_EQ(dfa.ClassOf('3'), dfa.ClassOf('7'));
  EXPECT_NE(dfa.ClassOf('3'), dfa.ClassOf('a'));
}

TEST(Dfa, MinimizePreservesLanguage) {
  const std::vector<std::string> patterns = {
      "(a|b)*abb", "a{2,5}", "(0|1)(0|1)*", "abc|abd|abe", "x?y?z?",
  };
  util::Rng rng(99);
  for (const auto& pattern : patterns) {
    const Dfa dfa = CompileToDfa(pattern);
    const Dfa minimal = dfa.Minimize();
    EXPECT_LE(minimal.StateCount(), dfa.StateCount()) << pattern;
    EXPECT_TRUE(dfa.EquivalentTo(minimal)) << pattern;
    // Spot-check with random subjects too.
    for (int i = 0; i < 200; ++i) {
      std::string subject;
      const int length = static_cast<int>(rng.Below(8));
      for (int j = 0; j < length; ++j) {
        subject += static_cast<char>('a' + rng.Below(4));
      }
      EXPECT_EQ(dfa.FullMatch(subject), minimal.FullMatch(subject))
          << pattern << " on " << subject;
    }
  }
}

TEST(Dfa, MinimizeReachesKnownMinimum) {
  // L = strings over {a,b} ending in "ab": minimal total DFA has 3 states.
  const Dfa minimal = CompileToDfa("(a|b)*ab").Minimize();
  EXPECT_EQ(minimal.StateCount(), 4);  // 3 live states + dead state
}

TEST(Dfa, MinimizeIdempotent) {
  const Dfa minimal = CompileToDfa("(a|b)*abb").Minimize();
  EXPECT_EQ(minimal.Minimize().StateCount(), minimal.StateCount());
}

TEST(Dfa, EquivalentToDetectsEquality) {
  EXPECT_TRUE(CompileToDfa("a|b").EquivalentTo(CompileToDfa("[ab]")));
  EXPECT_TRUE(CompileToDfa("aa*").EquivalentTo(CompileToDfa("a+")));
  EXPECT_TRUE(CompileToDfa("(ab)?").EquivalentTo(CompileToDfa("ab|")));
}

TEST(Dfa, EquivalentToDetectsInequality) {
  EXPECT_FALSE(CompileToDfa("a").EquivalentTo(CompileToDfa("b")));
  EXPECT_FALSE(CompileToDfa("a*").EquivalentTo(CompileToDfa("a+")));
  EXPECT_FALSE(CompileToDfa("a{2,3}").EquivalentTo(CompileToDfa("a{2,4}")));
}

TEST(Dfa, IsEmptyLanguage) {
  // No AST form denotes the empty language directly, but intersecting
  // contradictory requirements does: nothing matches "a" and is empty.
  EXPECT_FALSE(CompileToDfa("a").IsEmptyLanguage());
  EXPECT_FALSE(CompileToDfa("").IsEmptyLanguage());
  // A pattern whose language is plainly non-empty after minimization.
  EXPECT_FALSE(CompileToDfa("(a|b)*").Minimize().IsEmptyLanguage());
}

TEST(Dfa, ClassCharsPartitionIsConsistent) {
  const Dfa dfa = CompileToDfa("[0-4][5-9]");
  for (int k = 0; k < dfa.NumClasses(); ++k) {
    const CharSet chars = dfa.ClassChars(k);
    for (int b = 0; b < 256; ++b) {
      const char c = static_cast<char>(b);
      EXPECT_EQ(chars.Contains(c), dfa.ClassOf(c) == k);
    }
  }
}

TEST(Dfa, TransitionsAreTotal) {
  const Dfa dfa = CompileToDfa("(cisco|juniper)+");
  for (int s = 0; s < dfa.StateCount(); ++s) {
    for (int k = 0; k < dfa.NumClasses(); ++k) {
      const int t = dfa.TransitionByClass(s, k);
      EXPECT_GE(t, 0);
      EXPECT_LT(t, dfa.StateCount());
    }
  }
}

}  // namespace
}  // namespace confanon::regex
