// LeakDetector/LeakScanner: equivalence against a naive reference scan
// and word-boundary edge cases of the Section 6.1 grep-back defence.
#include <algorithm>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "config/document.h"
#include "core/leak_detector.h"
#include "util/aho_corasick.h"

namespace confanon {
namespace {

using core::LeakDetector;
using core::LeakFinding;
using core::LeakRecord;
using core::LeakScanner;

char FoldChar(char c) {
  return c >= 'A' && c <= 'Z' ? static_cast<char>(c - 'A' + 'a') : c;
}

bool IsWordChar(char c) {
  return (c >= '0' && c <= '9') || (FoldChar(c) >= 'a' && FoldChar(c) <= 'z') ||
         c == '.';
}

/// The specification the optimized scanner must match: for every recorded
/// identifier independently, case-insensitive substring search with
/// word-boundary checks, each identifier reported at most once per line.
std::vector<LeakFinding> ReferenceScan(
    const std::vector<config::ConfigFile>& corpus, const LeakRecord& record) {
  std::vector<std::pair<std::string, LeakFinding::Kind>> patterns;
  for (const std::string& word : record.hashed_words) {
    patterns.emplace_back(word, LeakFinding::Kind::kHashedWord);
  }
  for (const std::string& asn : record.public_asns) {
    patterns.emplace_back(asn, LeakFinding::Kind::kAsn);
  }
  for (const std::string& address : record.addresses) {
    patterns.emplace_back(address, LeakFinding::Kind::kAddress);
  }
  std::vector<LeakFinding> findings;
  for (const config::ConfigFile& file : corpus) {
    for (std::size_t i = 0; i < file.lines().size(); ++i) {
      std::string folded(file.lines()[i]);
      std::transform(folded.begin(), folded.end(), folded.begin(), FoldChar);
      for (const auto& [pattern, kind] : patterns) {
        std::string needle = pattern;
        std::transform(needle.begin(), needle.end(), needle.begin(), FoldChar);
        for (std::size_t pos = folded.find(needle); pos != std::string::npos;
             pos = folded.find(needle, pos + 1)) {
          const std::size_t end = pos + needle.size();
          const bool left_ok = pos == 0 || !IsWordChar(folded[pos - 1]);
          const bool right_ok =
              end == folded.size() || !IsWordChar(folded[end]);
          if (!left_ok || !right_ok) continue;
          findings.push_back(
              LeakFinding{file.name(), i, std::string(file.lines()[i]), pattern, kind});
          break;  // at most one report per identifier per line
        }
      }
    }
  }
  return findings;
}

/// Order-insensitive comparison key.
std::vector<std::tuple<std::string, std::size_t, std::string, int>> Keys(
    std::vector<LeakFinding> findings) {
  std::vector<std::tuple<std::string, std::size_t, std::string, int>> keys;
  keys.reserve(findings.size());
  for (const LeakFinding& finding : findings) {
    keys.emplace_back(finding.file, finding.line_number, finding.matched,
                      static_cast<int>(finding.kind));
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

LeakRecord SampleRecord() {
  LeakRecord record;
  record.hashed_words = {"corp-gw", "secret", "Chicago"};
  record.public_asns = {"1", "701", "7018"};
  record.addresses = {"10.1.1.1", "1.2.3.4"};
  return record;
}

TEST(LeakDetector, MatchesReferenceScanOnMixedCorpus) {
  const std::vector<config::ConfigFile> corpus = {
      config::ConfigFile::FromText(
          "a.cfg",
          "hostname corp-gw\n"
          "router bgp 701\n"
          " neighbor 10.1.1.1 remote-as 7018\n"
          " neighbor 10.1.1.10 remote-as 17018\n"
          "snmp-server community SECRET ro\n"
          "! 701 701 twice on one line is one finding\n"
          "ip route 1.2.3.4 255.255.255.255 Null0\n"
          "ip route 11.2.3.40 255.255.255.255 Null0\n"),
      config::ConfigFile::FromText(
          "b.cfg",
          "set community 701:120\n"
          "interface chicago0/1\n"
          "description CHICAGO uplink\n"
          "as7018 is embedded, 7018 is not\n"),
  };
  const std::vector<LeakFinding> fast =
      LeakDetector::Scan(corpus, SampleRecord());
  EXPECT_FALSE(fast.empty());
  EXPECT_EQ(Keys(fast), Keys(ReferenceScan(corpus, SampleRecord())));
}

TEST(LeakDetector, WordBoundaryEdgeCases) {
  LeakRecord record;
  record.public_asns = {"701", "1"};
  record.addresses = {"10.1.1.1"};
  const auto matches = [&](const std::string& line) {
    const std::vector<config::ConfigFile> corpus = {
        config::ConfigFile::FromText("t.cfg", line + "\n")};
    std::vector<std::string> matched;
    for (const LeakFinding& finding : LeakDetector::Scan(corpus, record)) {
      matched.push_back(finding.matched);
    }
    std::sort(matched.begin(), matched.end());
    return matched;
  };
  using V = std::vector<std::string>;

  // Line start / line end / whole line.
  EXPECT_EQ(matches("701 appears first"), V{"701"});
  EXPECT_EQ(matches("last word is 701"), V{"701"});
  EXPECT_EQ(matches("701"), V{"701"});

  // ':' and '/' are boundaries; '.' joins a word.
  EXPECT_EQ(matches("set community 701:120"), V{"701"});
  EXPECT_EQ(matches("ip address 10.1.1.1/24"), (V{"10.1.1.1"}));
  EXPECT_EQ(matches("bgp neighbor 10.1.1.1:179"), (V{"10.1.1.1"}));
  EXPECT_EQ(matches("version 701.1"), V{});
  EXPECT_EQ(matches("list 1.2 deny"), V{});

  // ASN digits embedded in longer numbers must not match.
  EXPECT_EQ(matches("router bgp 7011"), V{});
  EXPECT_EQ(matches("router bgp 1701"), V{});
  EXPECT_EQ(matches("mtu 17012"), V{});
  EXPECT_EQ(matches("as701 fused into a name"), V{});

  // Address embedded in a longer dotted quad must not match.
  EXPECT_EQ(matches("ip route 110.1.1.1 Null0"), V{});
  EXPECT_EQ(matches("ip route 10.1.1.10 Null0"), V{});
}

TEST(LeakScanner, ReusedScannerMatchesOneShotScan) {
  const std::vector<config::ConfigFile> corpus = {
      config::ConfigFile::FromText("a.cfg", "router bgp 701\nhello corp-gw\n"),
      config::ConfigFile::FromText("b.cfg", "ip route 1.2.3.4 Null0\n"),
  };
  LeakScanner scanner(SampleRecord());
  std::vector<LeakFinding> findings;
  for (int round = 0; round < 2; ++round) {
    findings.clear();
    for (const config::ConfigFile& file : corpus) {
      scanner.ScanFile(file, findings);
    }
    EXPECT_EQ(Keys(findings),
              Keys(LeakDetector::Scan(corpus, SampleRecord())));
  }
}

TEST(AhoCorasick, FindAllIntoClearsAndRefillsTheBuffer) {
  const util::AhoCorasick automaton({"ab", "bc"});
  std::vector<util::AhoCorasick::Match> buffer;
  automaton.FindAllInto("abc", buffer);
  ASSERT_EQ(buffer.size(), 2u);
  automaton.FindAllInto("xbc", buffer);
  ASSERT_EQ(buffer.size(), 1u);
  EXPECT_EQ(buffer[0].pattern_index, 1u);
  automaton.FindAllInto("zzz", buffer);
  EXPECT_TRUE(buffer.empty());
}

}  // namespace
}  // namespace confanon
