// Committed-golden byte identity for the defended path: ingest ->
// anonymize -> defend. tests/data/golden/defended-{ios,junos,mixed} hold
// the output confanon_tool produced for the golden pre-corpora under
// salt "golden-salt" with --defend-k 2 --defend-seed 42. The current
// pipeline must reproduce those bytes exactly at 1 and 4 threads: the
// defend phase runs after the parallel join, so decoy placement must be
// as thread-independent as the anonymization itself.
#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/fingerprint.h"
#include "config/document.h"
#include "pipeline/pipeline.h"
#include "util/io.h"

namespace confanon {
namespace {

std::filesystem::path GoldenDir(const std::string& leaf) {
  return std::filesystem::path(CONFANON_TEST_DATA_DIR) / "golden" / leaf;
}

std::vector<config::ConfigFile> LoadCorpus(const std::filesystem::path& dir) {
  std::vector<std::filesystem::path> paths;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    paths.push_back(entry.path());
  }
  std::sort(paths.begin(), paths.end());
  std::vector<config::ConfigFile> files;
  files.reserve(paths.size());
  for (const auto& path : paths) {
    std::string error;
    auto contents = util::ReadFileContents(path.string(), &error);
    EXPECT_TRUE(contents.has_value()) << error;
    files.push_back(config::ConfigFile::FromBacking(
        path.filename().string(), contents->view,
        std::move(contents->backing)));
  }
  return files;
}

void CheckDefendedGolden(const std::string& mode, int threads) {
  SCOPED_TRACE("mode=" + mode + " threads=" + std::to_string(threads));
  const std::vector<config::ConfigFile> inputs =
      LoadCorpus(GoldenDir("pre-" + mode));
  ASSERT_FALSE(inputs.empty());

  pipeline::PipelineOptions options;
  options.base.salt = "golden-salt";
  options.threads = threads;
  options.defense.k = 2;
  options.defense.seed = 42;
  const auto context = pipeline::MakeServiceContext(std::move(options));
  pipeline::CorpusPipeline pipeline(context, context->CreateSession());
  const std::vector<config::ConfigFile> output =
      pipeline.AnonymizeCorpus(inputs);
  ASSERT_EQ(output.size(), inputs.size());

  // The fixture is itself k-anonymous at the target.
  EXPECT_GE(pipeline.defense_report().achieved_k, 2u);
  EXPECT_GE(analysis::MinFingerprintClassSize(
                analysis::ExtractRouterFingerprints(output)),
            2u);

  const std::filesystem::path golden_dir = GoldenDir("defended-" + mode);
  std::size_t expected_files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(golden_dir)) {
    (void)entry;
    ++expected_files;
  }
  ASSERT_EQ(output.size(), expected_files);

  for (const auto& file : output) {
    const std::filesystem::path golden = golden_dir / (file.name() + ".cfg");
    std::string error;
    const auto expected = util::ReadFileFully(golden.string(), &error);
    ASSERT_TRUE(expected.has_value())
        << "no golden for output " << file.name() << ": " << error;
    EXPECT_EQ(file.ToText(), *expected)
        << "byte drift vs " << golden.string();
  }
}

TEST(GoldenDefended, IosSequential) { CheckDefendedGolden("ios", 1); }
TEST(GoldenDefended, IosParallel) { CheckDefendedGolden("ios", 4); }
TEST(GoldenDefended, JunosSequential) { CheckDefendedGolden("junos", 1); }
TEST(GoldenDefended, JunosParallel) { CheckDefendedGolden("junos", 4); }
TEST(GoldenDefended, MixedSequential) { CheckDefendedGolden("mixed", 1); }
TEST(GoldenDefended, MixedParallel) { CheckDefendedGolden("mixed", 4); }

}  // namespace
}  // namespace confanon
