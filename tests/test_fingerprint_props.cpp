// Property tests for the per-router fingerprint extractor
// (analysis::fingerprint) — the measurement both the Section 6.2/6.3
// insider experiment and the decoy defense trust. The properties:
//
//  * Router permutation invariance: shuffling the corpus permutes the
//    per-router fingerprints but changes no class size — the attack (and
//    the defense's achieved k) cannot depend on file order.
//  * Name invariance: a router's fingerprint is a function of its config
//    text only; renaming the file changes nothing.
//  * Thread invariance: the anonymized corpus fingerprints (per-router
//    and corpus-wide histogram) are identical at 1 and 4 pipeline
//    threads, because the output bytes are.
//  * Dialect ground truth: handcrafted IOS and JunOS configs extract to
//    exactly the expected histogram and degree.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "analysis/fingerprint.h"
#include "config/document.h"
#include "gen/config_writer.h"
#include "gen/network_gen.h"
#include "junos/writer.h"
#include "pipeline/pipeline.h"
#include "util/rng.h"

namespace confanon {
namespace {

std::vector<config::ConfigFile> MixedCorpus(std::uint64_t seed) {
  gen::GeneratorParams ios_params;
  ios_params.seed = seed;
  ios_params.router_count = 6;
  gen::GeneratorParams junos_params;
  junos_params.seed = seed + 1;
  junos_params.router_count = 6;
  auto mixed = gen::WriteNetworkConfigs(
      gen::GenerateNetwork(ios_params, static_cast<int>(seed)));
  auto junos = junos::WriteJunosNetworkConfigs(
      gen::GenerateNetwork(junos_params, static_cast<int>(seed) + 1));
  for (auto& file : junos) mixed.push_back(std::move(file));
  return mixed;
}

/// Class-size spectrum: fingerprint key -> member count, the quantity k
/// is derived from.
std::map<std::string, std::size_t> ClassSizes(
    const std::vector<config::ConfigFile>& files) {
  std::map<std::string, std::size_t> sizes;
  for (const analysis::RouterFingerprint& fingerprint :
       analysis::ExtractRouterFingerprints(files)) {
    ++sizes[fingerprint.Key()];
  }
  return sizes;
}

TEST(FingerprintProps, InvariantUnderRouterPermutation) {
  const auto corpus = MixedCorpus(31);
  const auto baseline = ClassSizes(corpus);
  const auto baseline_k = analysis::MinFingerprintClassSize(
      analysis::ExtractRouterFingerprints(corpus));

  auto shuffled = corpus;
  util::Rng rng(5);
  rng.Shuffle(shuffled);
  EXPECT_EQ(ClassSizes(shuffled), baseline);
  EXPECT_EQ(analysis::MinFingerprintClassSize(
                analysis::ExtractRouterFingerprints(shuffled)),
            baseline_k);

  // Per-file: each router keeps its own fingerprint wherever it lands.
  std::map<std::string, std::string> expected_key;
  for (const config::ConfigFile& file : corpus) {
    expected_key[file.name()] =
        analysis::ExtractRouterFingerprint(file).Key();
  }
  for (const config::ConfigFile& file : shuffled) {
    EXPECT_EQ(analysis::ExtractRouterFingerprint(file).Key(),
              expected_key[file.name()]);
  }
}

TEST(FingerprintProps, InvariantUnderFileRenaming) {
  const auto corpus = MixedCorpus(32);
  auto renamed = corpus;
  for (std::size_t i = 0; i < renamed.size(); ++i) {
    // Rebuild under a meaningless name; the text is all that matters.
    renamed[i] = config::ConfigFile::FromText(
        "x" + std::to_string(i), corpus[i].ToText());
  }
  const auto original = analysis::ExtractRouterFingerprints(corpus);
  const auto anonymous_names = analysis::ExtractRouterFingerprints(renamed);
  ASSERT_EQ(original.size(), anonymous_names.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(original[i], anonymous_names[i]) << "file " << i;
  }
}

TEST(FingerprintProps, HistogramsIdenticalAcrossThreadCounts) {
  const auto pre = MixedCorpus(33);
  std::vector<std::vector<config::ConfigFile>> outputs;
  for (const int threads : {1, 4}) {
    core::ServiceOptions options;
    options.base.salt = "prop-salt";
    options.threads = threads;
    const auto context = pipeline::MakeServiceContext(std::move(options));
    pipeline::CorpusPipeline pipe(context, context->CreateSession());
    outputs.push_back(pipe.AnonymizeCorpus(pre));
  }
  EXPECT_EQ(analysis::SubnetSizeFingerprint(outputs[0]),
            analysis::SubnetSizeFingerprint(outputs[1]));
  const auto a = analysis::ExtractRouterFingerprints(outputs[0]);
  const auto b = analysis::ExtractRouterFingerprints(outputs[1]);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "router " << i;
  }
  // And anonymization itself preserved each router's fingerprint (the
  // paper's structure-preservation claim, at per-router granularity).
  const auto original = analysis::ExtractRouterFingerprints(pre);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], original[i]) << "router " << i;
  }
}

TEST(FingerprintProps, IosGroundTruth) {
  const config::ConfigFile file(
      "r1", {
                "hostname r1",
                "interface Loopback0",
                " ip address 10.0.0.1 255.255.255.255",
                "!",
                "interface FastEthernet0/0",
                " ip address 10.1.0.1 255.255.255.0",
                "!",
                "interface FastEthernet0/1",
                " ip address 10.1.1.1  255.255.255.0",
                "!",
                "router bgp 65001",
                " neighbor 10.9.0.2 remote-as 65001",
                " neighbor 10.9.0.6 remote-as 200",
                " neighbor 10.9.0.10 remote-as 300",
                "!",
                "end",
            });
  const analysis::RouterFingerprint fingerprint =
      analysis::ExtractRouterFingerprint(file);
  EXPECT_EQ(fingerprint.subnet_sizes.Get(32), 1u);
  EXPECT_EQ(fingerprint.subnet_sizes.Get(24), 2u);
  EXPECT_EQ(fingerprint.subnet_sizes.Total(), 3u);
  // The 65001 neighbor is iBGP; only the two foreign ASNs count.
  EXPECT_EQ(fingerprint.external_sessions, 2);
}

TEST(FingerprintProps, JunosGroundTruth) {
  const config::ConfigFile file(
      "r2", {
                "interfaces {",
                "    lo0 {",
                "        unit 0 {",
                "            family inet {",
                "                address 10.0.0.2/32;",
                "            }",
                "        }",
                "    }",
                "    fe-0/0 {",
                "        unit 0 {",
                "            family inet {",
                "                address 10.2.0.1/30;",
                "            }",
                "        }",
                "    }",
                "}",
                "protocols {",
                "    bgp {",
                "        group internal {",
                "            type internal;",
                "            neighbor 10.0.0.9;",
                "        }",
                "        group h0123456789 {",
                "            type external;",
                "            peer-as 300;",
                "            neighbor 10.2.0.2;",
                "            neighbor 10.2.0.6;",
                "        }",
                "    }",
                "}",
            });
  const analysis::RouterFingerprint fingerprint =
      analysis::ExtractRouterFingerprint(file);
  EXPECT_EQ(fingerprint.subnet_sizes.Get(32), 1u);
  EXPECT_EQ(fingerprint.subnet_sizes.Get(30), 1u);
  EXPECT_EQ(fingerprint.subnet_sizes.Total(), 2u);
  // Only the type-external group's neighbors are peering sessions.
  EXPECT_EQ(fingerprint.external_sessions, 2);
}

TEST(FingerprintProps, DuplicateSubnetsCountOnce) {
  const config::ConfigFile file(
      "r3", {"interface FastEthernet0/0",
             " ip address 10.1.0.1 255.255.255.0", "!",
             "interface FastEthernet0/1",
             " ip address 10.1.0.2 255.255.255.0", "!"});
  const analysis::RouterFingerprint fingerprint =
      analysis::ExtractRouterFingerprint(file);
  EXPECT_EQ(fingerprint.subnet_sizes.Total(), 1u);  // same /24 both times
}

}  // namespace
}  // namespace confanon
