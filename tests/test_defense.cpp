// Metamorphic harness for the fingerprint defense (src/defense).
//
// The defense has no golden "right answer" — its contract is a set of
// relations that must hold across runs and inputs:
//
//  1. Effectiveness: after DefendCorpus(k), re-running the Section 6.2/6.3
//     insider experiment (per-router fingerprint extraction) over the
//     defended corpus finds every router k-anonymous.
//  2. Fixed point: defending an already-defended corpus inserts nothing
//     and changes no byte (classes >= k are never touched).
//  3. Determinism: the same (corpus, salt, seed) gives byte-identical
//     defended output and an identical manifest.
//  4. Safety: decoys never collide with real space — the decoy /8 appears
//     nowhere in the corpus, and no decoy prefix contains or is contained
//     by a real subnet. Checked exhaustively over the octet domain.
//  5. Monotonicity: achieved k never decreases as the budget grows, and
//     the spent decoy lines never exceed the budget.
//  6. Auditability: the decoy-aware pair audit accepts (pre, defended,
//     manifest), the plain pair audit rejects (pre, defended), and a
//     manifest that lies — shadowing prefix, bogus region — raises the
//     AUD-D001 / AUD-D002 findings.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "analysis/fingerprint.h"
#include "audit/audit.h"
#include "config/document.h"
#include "defense/defense.h"
#include "defense/decoy_render.h"
#include "defense/manifest.h"
#include "gen/config_writer.h"
#include "gen/network_gen.h"
#include "junos/writer.h"
#include "pipeline/pipeline.h"

namespace confanon {
namespace {

std::vector<config::ConfigFile> MixedCorpus(std::uint64_t seed,
                                            int routers_per_dialect = 6) {
  gen::GeneratorParams ios_params;
  ios_params.seed = seed;
  ios_params.router_count = routers_per_dialect;
  gen::GeneratorParams junos_params;
  junos_params.seed = seed + 1;
  junos_params.router_count = routers_per_dialect;
  auto ios = gen::WriteNetworkConfigs(
      gen::GenerateNetwork(ios_params, static_cast<int>(seed)));
  auto junos = junos::WriteJunosNetworkConfigs(
      gen::GenerateNetwork(junos_params, static_cast<int>(seed) + 1));
  std::vector<config::ConfigFile> mixed;
  for (auto& file : ios) mixed.push_back(std::move(file));
  for (auto& file : junos) mixed.push_back(std::move(file));
  return mixed;
}

std::vector<config::ConfigFile> Anonymize(
    const std::vector<config::ConfigFile>& files, const std::string& salt) {
  core::ServiceOptions options;
  options.base.salt = salt;
  options.threads = 1;
  const auto context = pipeline::MakeServiceContext(std::move(options));
  pipeline::CorpusPipeline pipe(context, context->CreateSession());
  return pipe.AnonymizeCorpus(files);
}

std::vector<std::string> CorpusText(
    const std::vector<config::ConfigFile>& files) {
  std::vector<std::string> text;
  text.reserve(files.size());
  for (const config::ConfigFile& file : files) text.push_back(file.ToText());
  return text;
}

core::DefenseOptions Defend(int k, std::uint64_t seed = 1,
                            double budget = 0.5) {
  core::DefenseOptions options;
  options.k = k;
  options.seed = seed;
  options.budget = budget;
  return options;
}

TEST(Defense, AchievesTargetKOnMixedCorpus) {
  const auto pre = MixedCorpus(11);
  auto defended = Anonymize(pre, "defense-salt");
  const auto baseline = analysis::MinFingerprintClassSize(
      analysis::ExtractRouterFingerprints(defended));

  const defense::DefenseResult result =
      defense::DefendCorpus(defended, Defend(2), "defense-salt");

  EXPECT_EQ(result.report.baseline_k, baseline);
  EXPECT_GE(result.report.achieved_k, 2u);
  // The report's claim must match an independent re-run of the insider
  // experiment over the defended corpus.
  EXPECT_EQ(result.report.achieved_k,
            analysis::MinFingerprintClassSize(
                analysis::ExtractRouterFingerprints(defended)));
  EXPECT_GT(result.report.decoy_lines, 0u);
  EXPECT_EQ(result.report.decoy_lines, result.manifest.TotalDecoyLines());
}

TEST(Defense, HigherTargetK) {
  const auto pre = MixedCorpus(12);
  auto defended = Anonymize(pre, "defense-salt");
  // This corpus has a hub router with ~180 distinct /30 link subnets, so
  // padding its k-group up to a common fingerprint is intrinsically
  // expensive: give the pass enough budget to afford it.
  const defense::DefenseResult result =
      defense::DefendCorpus(defended, Defend(3, 1, 6.0), "defense-salt");
  EXPECT_GE(result.report.achieved_k, 3u);
}

TEST(Defense, DefendedOutputIsAFixedPoint) {
  const auto pre = MixedCorpus(13);
  auto defended = Anonymize(pre, "defense-salt");
  defense::DefendCorpus(defended, Defend(2), "defense-salt");
  const std::vector<std::string> before = CorpusText(defended);

  const defense::DefenseResult again =
      defense::DefendCorpus(defended, Defend(2), "defense-salt");

  EXPECT_EQ(again.report.decoy_lines, 0u);
  EXPECT_TRUE(again.manifest.Empty());
  EXPECT_EQ(CorpusText(defended), before);
}

TEST(Defense, DeterministicPerSaltAndSeed) {
  const auto pre = MixedCorpus(14);
  auto a = Anonymize(pre, "defense-salt");
  auto b = Anonymize(pre, "defense-salt");
  const defense::DefenseResult ra =
      defense::DefendCorpus(a, Defend(2, 7), "defense-salt");
  const defense::DefenseResult rb =
      defense::DefendCorpus(b, Defend(2, 7), "defense-salt");
  EXPECT_EQ(CorpusText(a), CorpusText(b));
  EXPECT_EQ(ra.manifest, rb.manifest);

  // A different seed must still hit the k target, but is free to place
  // different decoys.
  auto c = Anonymize(pre, "defense-salt");
  const defense::DefenseResult rc =
      defense::DefendCorpus(c, Defend(2, 8), "defense-salt");
  EXPECT_GE(rc.report.achieved_k, 2u);
}

TEST(Defense, DecoysNeverTouchRealSpace) {
  const auto pre = MixedCorpus(15);
  auto defended = Anonymize(pre, "defense-salt");
  const std::vector<config::ConfigFile> real = defended;  // pre-defense
  const defense::DefenseResult result =
      defense::DefendCorpus(defended, Defend(2), "defense-salt");
  ASSERT_GE(result.report.decoy_octet, 0);

  for (const config::ConfigFile& file : real) {
    for (const net::Prefix& subnet : analysis::CollectInterfaceSubnets(file)) {
      EXPECT_NE(static_cast<int>(subnet.address().value() >> 24),
                result.report.decoy_octet);
      for (const net::Prefix& decoy : result.manifest.prefixes) {
        EXPECT_FALSE(decoy.Contains(subnet) || subnet.Contains(decoy))
            << decoy.ToString() << " vs real " << subnet.ToString();
      }
    }
  }
}

// Exhaustive over the planner's whole /8 domain: whichever candidate
// octet a corpus occupies, the chooser never picks a colliding block.
TEST(Defense, OctetChoiceAvoidsEveryOccupiedCandidate) {
  for (const int occupied : defense::DecoyOctetCandidates()) {
    const std::string address = std::to_string(occupied) + ".1.2.1";
    config::ConfigFile file(
        "r1", {"interface FastEthernet0/0",
               " ip address " + address + " 255.255.255.0", "!"});
    util::Rng rng(99);
    const int chosen = defense::ChooseDecoyOctet({file}, rng);
    ASSERT_GE(chosen, 0);
    EXPECT_NE(chosen, occupied) << "collided at " << occupied;
  }
}

TEST(Defense, NoSafeOctetMeansNoDecoys) {
  // A corpus claiming a /1 over each half of the candidate space leaves
  // the planner nowhere safe to carve; it must refuse, not collide.
  config::ConfigFile file("r1", {"interface FastEthernet0/0",
                                 " ip address 1.0.0.1 128.0.0.0",
                                 "!",
                                 "interface FastEthernet0/1",
                                 " ip address 129.0.0.1 128.0.0.0",
                                 "!"});
  std::vector<config::ConfigFile> corpus = {file, file};
  corpus[1].mutable_lines();  // distinct object, same content
  util::Rng rng(1);
  EXPECT_EQ(defense::ChooseDecoyOctet(corpus, rng), -1);
}

TEST(Defense, AchievedKMonotoneInBudget) {
  const auto pre = MixedCorpus(16, 8);
  const auto anonymized = Anonymize(pre, "defense-salt");
  std::size_t previous_k = 0;
  std::uint64_t previous_lines = 0;
  for (const double budget : {0.0, 0.02, 0.08, 0.2, 0.5, 1.0}) {
    auto defended = anonymized;
    const defense::DefenseResult result =
        defense::DefendCorpus(defended, Defend(3, 1, budget), "defense-salt");
    EXPECT_GE(result.report.achieved_k, previous_k)
        << "k regressed at budget " << budget;
    EXPECT_GE(result.report.decoy_lines, previous_lines);
    // Hard cap: the pass never overspends its budget.
    EXPECT_LE(static_cast<double>(result.report.decoy_lines),
              budget * static_cast<double>(result.report.corpus_lines));
    previous_k = result.report.achieved_k;
    previous_lines = result.report.decoy_lines;
  }
}

TEST(Defense, KAtMostOneIsANoOp) {
  const auto pre = MixedCorpus(17);
  auto defended = Anonymize(pre, "defense-salt");
  const std::vector<std::string> before = CorpusText(defended);
  const defense::DefenseResult result =
      defense::DefendCorpus(defended, Defend(1), "defense-salt");
  EXPECT_EQ(result.report.decoy_lines, 0u);
  EXPECT_EQ(CorpusText(defended), before);
}

TEST(Defense, SingleRouterReportsHonestK) {
  auto pre = MixedCorpus(18, 1);
  pre.resize(1);
  auto defended = Anonymize(pre, "defense-salt");
  const defense::DefenseResult result =
      defense::DefendCorpus(defended, Defend(2), "defense-salt");
  EXPECT_EQ(result.report.achieved_k, 1u);
  EXPECT_EQ(result.report.decoy_lines, 0u);
}

TEST(Defense, SessionMergeTracksWorstK) {
  core::ServiceOptions options;
  options.base.salt = "merge-salt";
  const core::ServiceContext context(std::move(options));
  const auto session = context.CreateSession();
  core::DefenseSummary first;
  first.target_k = 2;
  first.achieved_k = 3;
  first.decoy_lines = 10;
  first.overhead = 0.10;
  session->MergeDefense(first);
  core::DefenseSummary second;
  second.target_k = 2;
  second.achieved_k = 2;
  second.decoy_lines = 5;
  second.overhead = 0.05;
  session->MergeDefense(second);
  const core::DefenseSummary merged = session->defense();
  EXPECT_EQ(merged.achieved_k, 2u);  // min across runs: the honest claim
  EXPECT_EQ(merged.decoy_lines, 15u);
  EXPECT_EQ(merged.target_k, 2u);
}

// --- auditability ---

TEST(Defense, DecoyAwareAuditAcceptsDefendedPair) {
  const auto pre = MixedCorpus(19);
  auto defended = Anonymize(pre, "defense-salt");
  const defense::DefenseResult result =
      defense::DefendCorpus(defended, Defend(2), "defense-salt");
  ASSERT_GT(result.report.decoy_lines, 0u);

  audit::AuditOptions options;
  options.threads = 1;
  // The plain pair audit must notice the added structure...
  EXPECT_TRUE(audit::ComparePair(pre, defended, options).HasErrors());
  // ...and the decoy-aware mode must strip it and prove the original
  // structure isomorphic.
  const audit::AuditResult decoy_aware =
      audit::ComparePairDefended(pre, defended, result.manifest, options);
  EXPECT_FALSE(decoy_aware.HasErrors()) << decoy_aware.ToText();

  // Round-trip through the text manifest the CLIs exchange.
  const auto reparsed =
      defense::DecoyManifest::Parse(result.manifest.Serialize());
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(*reparsed, result.manifest);
}

TEST(Defense, ShadowingDecoyRaisesAuditFinding) {
  const auto pre = MixedCorpus(20);
  auto defended = Anonymize(pre, "defense-salt");
  defense::DefenseResult result =
      defense::DefendCorpus(defended, Defend(2), "defense-salt");
  ASSERT_FALSE(result.manifest.prefixes.empty());

  // Lie: claim a real subnet of the corpus is a decoy.
  std::vector<net::Prefix> real;
  for (const config::ConfigFile& file : defended) {
    for (const net::Prefix& subnet :
         analysis::CollectInterfaceSubnets(file)) {
      if (static_cast<int>(subnet.address().value() >> 24) !=
          result.manifest.octet) {
        real.push_back(subnet);
      }
    }
  }
  ASSERT_FALSE(real.empty());
  result.manifest.prefixes.push_back(real.front());

  audit::AuditOptions options;
  options.threads = 1;
  const audit::AuditResult audited =
      audit::ComparePairDefended(pre, defended, result.manifest, options);
  bool found = false;
  for (const audit::Finding& finding : audited.findings) {
    found |= finding.rule_id == audit::kRuleDecoyShadowsReal;
  }
  EXPECT_TRUE(found) << audited.ToText();
}

TEST(Defense, BogusManifestRegionRaisesAuditFinding) {
  const auto pre = MixedCorpus(21);
  auto defended = Anonymize(pre, "defense-salt");
  defense::DefenseResult result =
      defense::DefendCorpus(defended, Defend(2), "defense-salt");
  ASSERT_FALSE(result.manifest.files.empty());

  // Region past the end of its file.
  result.manifest.files.front().regions.push_back(
      config::LineRegion{1u << 20, (1u << 20) + 3});

  audit::AuditOptions options;
  options.threads = 1;
  const audit::AuditResult audited =
      audit::ComparePairDefended(pre, defended, result.manifest, options);
  bool found = false;
  for (const audit::Finding& finding : audited.findings) {
    found |= finding.rule_id == audit::kRuleDecoyManifestMismatch;
  }
  EXPECT_TRUE(found) << audited.ToText();
}

TEST(Defense, PipelinePhaseWiresThrough) {
  const auto pre = MixedCorpus(22);
  core::ServiceOptions options;
  options.base.salt = "phase-salt";
  options.threads = 2;
  options.defense.k = 2;
  options.defense.seed = 3;
  // Enough budget to pair this corpus's /30-heavy hub router.
  options.defense.budget = 2.0;
  const auto context = pipeline::MakeServiceContext(std::move(options));
  pipeline::CorpusPipeline pipe(context, context->CreateSession());
  const auto defended = pipe.AnonymizeCorpus(pre);

  EXPECT_GE(pipe.defense_report().achieved_k, 2u);
  EXPECT_EQ(pipe.defense_report().decoy_lines,
            pipe.decoy_manifest().TotalDecoyLines());
  // The session carries the summary for /v1/sessions.
  EXPECT_EQ(pipe.session()->defense().achieved_k,
            pipe.defense_report().achieved_k);
  // And the output really is k-anonymous.
  EXPECT_GE(analysis::MinFingerprintClassSize(
                analysis::ExtractRouterFingerprints(defended)),
            2u);
}

TEST(Defense, ManifestParseRejectsGarbage) {
  EXPECT_FALSE(defense::DecoyManifest::Parse("bogus directive\n").has_value());
  EXPECT_FALSE(
      defense::DecoyManifest::Parse("region f 9 3\n").has_value());
  EXPECT_FALSE(defense::DecoyManifest::Parse("octet 900\n").has_value());
  const auto ok = defense::DecoyManifest::Parse(
      "# comment\noctet 23\nprefix 23.0.0.0/28\nasn 64531\n"
      "region f1 2 5\nregion f1 7 9\n");
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->TotalDecoyLines(), 5u);
}

}  // namespace
}  // namespace confanon
