// Robustness fuzzing: the anonymizer must survive arbitrary junk.
//
// The paper's tool ran over 4.3M lines spanning 200+ IOS versions with no
// grammar — robustness against unexpected syntax is a design requirement,
// not a nicety. These tests feed adversarial and random inputs through
// the full pipeline and assert the safety invariants that must hold for
// *any* input: no crash, determinism, conservative hashing (an unknown
// word never survives), and numeric-context conservatism.
#include <gtest/gtest.h>

#include "config/tokenizer.h"
#include "core/anonymizer.h"
#include "junos/anonymizer.h"
#include "core/leak_detector.h"
#include "util/rng.h"
#include "util/strings.h"

namespace confanon::core {
namespace {

config::ConfigFile File(std::string_view text) {
  return config::ConfigFile::FromText("fuzz", text);
}

std::string RandomLine(util::Rng& rng) {
  // Token soup drawn from config-plausible fragments plus junk.
  static const std::vector<std::string> kFragments = {
      "ip",          "address",    "1.2.3.4",      "255.255.255.0",
      "router",      "bgp",        "701",          "neighbor",
      "remote-as",   "!",          "description",  "interface",
      "Serial0/0",   "route-map",  "FOO-import",   "permit",
      "deny",        "set",        "community",    "701:120",
      "as-path",     "access-list", "_70[1-5]_",   "(",
      ")",           "[",          "]",            "{3,",
      "banner",      "motd",       "^C",           "\\",
      "0.0.0.255",   "65535",      "4294967295",   "...",
      "a.b.c.d",     "-",          "ip|route",     "xyzzy",
      "match",       "prepend",    "no",           "shutdown",
  };
  std::string line;
  const int words = static_cast<int>(rng.Below(9));
  for (int i = 0; i < words; ++i) {
    if (i > 0) line += rng.Chance(0.1) ? "  " : " ";
    line += rng.Pick(kFragments);
  }
  return line;
}

TEST(FuzzRobustness, NeverThrowsOnTokenSoup) {
  util::Rng rng(0xF022);
  for (int trial = 0; trial < 50; ++trial) {
    std::string text;
    const int lines = static_cast<int>(rng.Between(1, 60));
    for (int i = 0; i < lines; ++i) {
      text += RandomLine(rng);
      text += '\n';
    }
    AnonymizerOptions options;
    options.salt = "fuzz-salt";
    Anonymizer anonymizer(std::move(options));
    EXPECT_NO_THROW(anonymizer.AnonymizeNetwork({File(text)})) << text;
  }
}

TEST(FuzzRobustness, DeterministicOnTokenSoup) {
  util::Rng rng(0xF023);
  for (int trial = 0; trial < 20; ++trial) {
    std::string text;
    for (int i = 0; i < 30; ++i) {
      text += RandomLine(rng);
      text += '\n';
    }
    auto run = [&] {
      AnonymizerOptions options;
      options.salt = "fuzz-salt";
      Anonymizer anonymizer(std::move(options));
      return anonymizer.AnonymizeNetwork({File(text)}).front().ToText();
    };
    EXPECT_EQ(run(), run());
  }
}

TEST(FuzzRobustness, UnknownWordsNeverSurvive) {
  util::Rng rng(0xF024);
  for (int trial = 0; trial < 20; ++trial) {
    // Plant a unique unknown identifier at a random position in soup.
    const std::string secret =
        "zq" + std::to_string(rng.Between(100000, 999999)) + "corp";
    std::string text;
    for (int i = 0; i < 20; ++i) {
      std::string line = RandomLine(rng);
      if (i == 7) {
        line += " " + secret;
      }
      text += line + '\n';
    }
    AnonymizerOptions options;
    options.salt = "fuzz-salt";
    Anonymizer anonymizer(std::move(options));
    const auto post = anonymizer.AnonymizeNetwork({File(text)});
    EXPECT_EQ(post.front().ToText().find(secret), std::string::npos)
        << "in: " << text;
  }
}

TEST(FuzzRobustness, MalformedRegexLinesDoNotCrash) {
  // as-path access-list lines with broken regexps: the rewriter throws
  // internally; the anonymizer must degrade gracefully (leave the pattern
  // for the leak pass, never crash).
  for (const char* pattern : {"(", "[", "a{", "*(", "70[9-1]", "\\"}) {
    AnonymizerOptions options;
    options.salt = "fuzz-salt";
    Anonymizer anonymizer(std::move(options));
    const std::string text =
        std::string("ip as-path access-list 5 permit ") + pattern + "\n";
    EXPECT_NO_THROW(anonymizer.AnonymizeNetwork({File(text)})) << pattern;
  }
}

TEST(FuzzRobustness, PathologicalLineShapes) {
  const char* cases[] = {
      "",                              // empty file
      "\n\n\n",                        // blank lines
      " ",                             // whitespace only
      "!",                             // bare comment
      "!!!!!!",                        // comment runs
      "banner motd ^C",                // unterminated banner
      "neighbor",                      // truncated commands
      "neighbor 1.2.3.4",
      "neighbor 1.2.3.4 remote-as",
      "router bgp",
      "ip as-path access-list",
      "ip as-path access-list 5 permit",
      "set community",
      "ip community-list 100 permit",
      "dialer string",
      "username",
      "interface",
      "ip address 1.2.3.4",            // missing mask
      "ip address 1.2.3.4 255.255.255.0 secondary",
      "    deeply indented junk    ",
      "\tip\taddress\t9.9.9.9\t255.0.0.0",
  };
  for (const char* text : cases) {
    AnonymizerOptions options;
    options.salt = "fuzz-salt";
    Anonymizer anonymizer(std::move(options));
    EXPECT_NO_THROW(anonymizer.AnonymizeNetwork({File(text)}))
        << '"' << text << '"';
  }
}

TEST(FuzzRobustness, VeryLongLine) {
  std::string line = "description ";
  for (int i = 0; i < 5000; ++i) line += "word ";
  AnonymizerOptions options;
  options.salt = "fuzz-salt";
  Anonymizer anonymizer(std::move(options));
  const auto post = anonymizer.AnonymizeNetwork({File(line + "\n")});
  EXPECT_LT(post.front().lines()[0].size(), 64u);  // payload stripped
}

TEST(FuzzRobustness, LineCountPreservedOutsideBanners) {
  // Apart from banner-block removal, anonymization is line-for-line.
  util::Rng rng(0xF025);
  for (int trial = 0; trial < 10; ++trial) {
    std::string text;
    int lines = 0;
    for (int i = 0; i < 25; ++i) {
      std::string line = RandomLine(rng);
      // Keep banner openers out so no region forms.
      if (util::StartsWith(line, "banner")) line = "x " + line;
      text += line + '\n';
      ++lines;
    }
    AnonymizerOptions options;
    options.salt = "fuzz-salt";
    Anonymizer anonymizer(std::move(options));
    const auto post = anonymizer.AnonymizeNetwork({File(text)});
    EXPECT_EQ(post.front().LineCount(), static_cast<std::size_t>(lines));
  }
}

TEST(FuzzRobustness, JunosTokenSoup) {
  util::Rng rng(0xF026);
  static const std::vector<std::string> kFragments = {
      "peer-as", "701",  "{",      "}",  ";",       "[",         "]",
      "\"quoted\"", "as-path", "members", "neighbor", "1.2.3.4/30",
      "description", "#tail", "host-name", "/*", "*/", "community",
      "address", "unit", "family", "inet", "xyzzy",
  };
  for (int trial = 0; trial < 40; ++trial) {
    std::string text;
    const int lines = static_cast<int>(rng.Between(1, 40));
    for (int i = 0; i < lines; ++i) {
      const int words = static_cast<int>(rng.Below(7));
      for (int w = 0; w < words; ++w) {
        if (w > 0) text += ' ';
        text += rng.Pick(kFragments);
      }
      text += '\n';
    }
    auto run = [&] {
      junos::JunosAnonymizerOptions options;
      options.salt = "junos-fuzz";
      junos::JunosAnonymizer anonymizer(std::move(options));
      return anonymizer
          .AnonymizeNetwork({config::ConfigFile::FromText("j", text)})
          .front()
          .ToText();
    };
    std::string first;
    EXPECT_NO_THROW(first = run()) << text;
    EXPECT_EQ(first, run());
  }
}

}  // namespace
}  // namespace confanon::core
