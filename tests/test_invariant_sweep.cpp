// Salt-parameterized invariant sweep: every DESIGN.md invariant checked
// across several independent salts, so no property silently depends on
// one lucky key. (The umbrella header is used deliberately: this TU also
// proves confanon.h compiles standalone.)
#include "confanon.h"

#include <gtest/gtest.h>

#include <set>

namespace confanon {
namespace {

class InvariantSweep : public ::testing::TestWithParam<const char*> {
 protected:
  std::string Salt() const { return GetParam(); }
};

TEST_P(InvariantSweep, PrefixAndClassPreservation) {
  ipanon::IpAnonymizer anon(Salt());
  util::Rng rng(util::HashSeed(Salt()) ^ 1);
  std::vector<net::Ipv4Address> inputs, outputs;
  std::vector<bool> walked;
  while (inputs.size() < 150) {
    net::Ipv4Address a(static_cast<std::uint32_t>(rng.Next()));
    if (net::IsSpecial(a)) continue;
    inputs.push_back(a);
    outputs.push_back(anon.Map(a));
    walked.push_back(anon.LastMapWalked());
  }
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    EXPECT_EQ(static_cast<int>(inputs[i].GetClass()),
              static_cast<int>(outputs[i].GetClass()));
    EXPECT_FALSE(net::IsSpecial(outputs[i]));
    for (std::size_t j = i + 1; j < inputs.size(); ++j) {
      if (walked[i] || walked[j]) continue;
      EXPECT_EQ(net::CommonPrefixLength(inputs[i], inputs[j]),
                net::CommonPrefixLength(outputs[i], outputs[j]));
    }
  }
}

TEST_P(InvariantSweep, AsnPermutationBijectiveOnSample) {
  const asn::AsnMap map(Salt());
  std::set<std::uint32_t> images;
  for (std::uint32_t asn = 1; asn < 64512; asn += 37) {
    const std::uint32_t mapped = map.Map(asn);
    EXPECT_TRUE(asn::IsPublicAsn(mapped));
    EXPECT_TRUE(images.insert(mapped).second);
    EXPECT_EQ(map.Unmap(mapped), asn);
  }
  for (std::uint32_t asn = 64512; asn <= 65535; asn += 113) {
    EXPECT_EQ(map.Map(asn), asn);
  }
}

TEST_P(InvariantSweep, RegexRewriteLanguageEquality) {
  const asn::AsnMap map(Salt());
  const asn::AsnRegexRewriter rewriter(map);
  for (const char* pattern : {"_70[1-5]_", "(_1239_|_3356_)", "^13$"}) {
    const auto result = rewriter.Rewrite(pattern);
    ASSERT_TRUE(result.changed) << pattern;
    std::vector<std::uint32_t> expected;
    for (std::uint32_t a :
         asn::TokenLanguage::Compile(pattern).Enumerate()) {
      expected.push_back(map.Map(a));
    }
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(asn::TokenLanguage::Compile(result.pattern).Enumerate(),
              expected)
        << pattern << " -> " << result.pattern;
  }
}

TEST_P(InvariantSweep, ReferentialIntegrityAndDeterminism) {
  const std::string text =
      "hostname r1.zork.com\n"
      "router bgp 701\n"
      " neighbor 9.9.9.9 remote-as 1239\n"
      " neighbor 9.9.9.9 route-map ZORK-in in\n"
      "route-map ZORK-in permit 10\n";
  auto run = [&] {
    core::AnonymizerOptions options;
    options.salt = Salt();
    core::Anonymizer anonymizer(std::move(options));
    return anonymizer
        .AnonymizeNetwork({config::ConfigFile::FromText("r", text)})
        .front()
        .ToText();
  };
  const std::string first = run();
  EXPECT_EQ(first, run());
  EXPECT_EQ(first.find("ZORK"), std::string::npos);
  EXPECT_EQ(first.find("zork"), std::string::npos);
  // The route-map hash appears twice (reference + definition).
  core::StringHasher hasher(Salt());
  const std::string token = hasher.Hash("ZORK-in");
  std::size_t occurrences = 0;
  for (std::size_t at = first.find(token); at != std::string::npos;
       at = first.find(token, at + 1)) {
    ++occurrences;
  }
  EXPECT_EQ(occurrences, 2u);
}

TEST_P(InvariantSweep, NoLeakOnGeneratedNetwork) {
  gen::GeneratorParams params;
  params.seed = util::HashSeed(Salt());
  params.router_count = 10;
  const auto pre = gen::WriteNetworkConfigs(gen::GenerateNetwork(params, 0));
  core::AnonymizerOptions options;
  options.salt = Salt();
  core::Anonymizer anonymizer(std::move(options));
  const auto post = anonymizer.AnonymizeNetwork(pre);
  for (const auto& finding :
       core::LeakDetector::Scan(post, anonymizer.leak_record())) {
    EXPECT_EQ(finding.kind, core::LeakFinding::Kind::kAsn)
        << finding.matched << " in " << finding.line;
  }
}

INSTANTIATE_TEST_SUITE_P(Salts, InvariantSweep,
                         ::testing::Values("alpha", "bravo-2", "charlie#3",
                                           "delta four", "??:/salt",
                                           ""),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           return "salt_" + std::to_string(info.index);
                         });

}  // namespace
}  // namespace confanon
