// Tests for the telemetry-export layer (src/obs/export.h), the HTTP
// exposition listener (src/obs/exposition.h), the perf-counter wrapper
// (src/obs/perf_counters.h) and the phase profiler (src/obs/profiler.h):
// snapshot sequencing and differencing, Prometheus text rendering
// line-by-line, a real-socket /metrics round trip, graceful perf
// degradation, and folded-stack reconstruction.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "obs/export.h"
#include "obs/exposition.h"
#include "obs/metrics.h"
#include "obs/perf_counters.h"
#include "obs/profiler.h"
#include "obs/trace.h"

namespace confanon {
namespace {

std::vector<std::string> Lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

bool Contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

// --- snapshots ---------------------------------------------------------

TEST(SnapshotExporter, SequencesAreMonotonic) {
  obs::MetricsRegistry registry;
  registry.CounterNamed("core.lines").Add(3);
  obs::SnapshotExporter exporter(&registry);

  const obs::MetricsSnapshot first = exporter.Capture();
  const obs::MetricsSnapshot second = exporter.Capture();
  EXPECT_EQ(first.sequence + 1, second.sequence);
  EXPECT_EQ(exporter.last_sequence(), second.sequence);
  EXPECT_GE(second.mono_ns, first.mono_ns);
  EXPECT_EQ(first.metrics.counters.at("core.lines"), 3u);
}

TEST(SnapshotExporter, DiffProducesDeltasAndRates) {
  obs::MetricsRegistry registry;
  registry.CounterNamed("core.lines").Add(10);
  registry.GaugeNamed("ipanon.trie_nodes").Set(100);
  registry.HistogramNamed("core.line_ns").Record(50);
  obs::SnapshotExporter exporter(&registry);

  obs::MetricsSnapshot earlier = exporter.Capture();
  registry.CounterNamed("core.lines").Add(40);
  registry.GaugeNamed("ipanon.trie_nodes").Set(175);
  registry.HistogramNamed("core.line_ns").Record(50);
  registry.HistogramNamed("core.line_ns").Record(70);
  obs::MetricsSnapshot later = exporter.Capture();
  // Pin the interval so the rate assertion is exact.
  earlier.mono_ns = 0;
  later.mono_ns = 2'000'000'000;  // 2s

  const obs::SnapshotDelta delta = obs::DiffSnapshots(earlier, later);
  EXPECT_DOUBLE_EQ(delta.interval_s, 2.0);
  EXPECT_EQ(delta.counter_deltas.at("core.lines"), 40u);
  EXPECT_DOUBLE_EQ(delta.counter_rates.at("core.lines"), 20.0);
  EXPECT_EQ(delta.gauge_changes.at("ipanon.trie_nodes"), 75);
  EXPECT_EQ(delta.histogram_deltas.at("core.line_ns").count, 2u);
}

TEST(SnapshotExporter, DiffClampsBackwardCounters) {
  obs::MetricsSnapshot earlier, later;
  earlier.metrics.counters["x"] = 100;
  later.metrics.counters["x"] = 60;  // restarted registry
  later.mono_ns = 1'000'000'000;
  const obs::SnapshotDelta delta = obs::DiffSnapshots(earlier, later);
  EXPECT_EQ(delta.counter_deltas.at("x"), 0u);
}

// --- Prometheus rendering ----------------------------------------------

TEST(Prometheus, SanitizesMetricNames) {
  EXPECT_EQ(obs::SanitizeMetricName("core.line_ns"), "core_line_ns");
  EXPECT_EQ(obs::SanitizeMetricName("a-b/c d"), "a_b_c_d");
  EXPECT_EQ(obs::SanitizeMetricName("7zip"), "_7zip");
}

TEST(Prometheus, RendersCounterAndGaugeLines) {
  obs::RunMetrics metrics;
  metrics.counters["core.lines"] = 42;
  metrics.gauges["ipanon.trie_nodes"] = 17;
  const std::vector<std::string> lines =
      Lines(obs::RenderPrometheus(metrics));
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_EQ(lines[0], "# TYPE confanon_core_lines_total counter");
  EXPECT_EQ(lines[1], "confanon_core_lines_total 42");
  EXPECT_EQ(lines[2], "# TYPE confanon_ipanon_trie_nodes gauge");
  EXPECT_EQ(lines[3], "confanon_ipanon_trie_nodes 17");
}

TEST(Prometheus, RendersHistogramAsCumulativeBuckets) {
  obs::MetricsRegistry registry;
  auto& histogram = registry.HistogramNamed("core.line_ns");
  histogram.Record(5);
  histogram.Record(5);
  histogram.Record(1000);
  const std::vector<std::string> lines =
      Lines(obs::RenderPrometheus(registry.Snapshot()));

  ASSERT_GE(lines.size(), 5u);
  EXPECT_EQ(lines[0], "# TYPE confanon_core_line_ns histogram");
  // Occupied log-scale buckets, cumulative, then +Inf == _count.
  EXPECT_TRUE(Contains(lines[1], "confanon_core_line_ns_bucket{le=\""));
  bool saw_inf = false, saw_sum = false, saw_count = false;
  std::uint64_t last_cumulative = 0;
  for (const std::string& line : lines) {
    if (Contains(line, "_bucket{le=\"+Inf\"} 3")) saw_inf = true;
    if (Contains(line, "confanon_core_line_ns_sum 1010")) saw_sum = true;
    if (Contains(line, "confanon_core_line_ns_count 3")) saw_count = true;
    if (Contains(line, "_bucket{le=\"") && !Contains(line, "+Inf")) {
      const std::uint64_t cumulative =
          std::stoull(line.substr(line.rfind(' ') + 1));
      EXPECT_GE(cumulative, last_cumulative) << line;
      last_cumulative = cumulative;
    }
  }
  EXPECT_TRUE(saw_inf);
  EXPECT_TRUE(saw_sum);
  EXPECT_TRUE(saw_count);
}

TEST(Prometheus, SnapshotVariantEmitsExporterMeta) {
  obs::MetricsRegistry registry;
  registry.CounterNamed("core.lines").Add(1);
  obs::SnapshotExporter exporter(&registry);
  const std::string text = obs::RenderPrometheus(exporter.Capture());
  EXPECT_TRUE(Contains(text, "confanon_export_sequence 1"));
  EXPECT_TRUE(Contains(text, "confanon_export_timestamp_ms"));
}

TEST(Prometheus, OutputIsDeterministicAndSorted) {
  // Register in shuffled order; both the JSON snapshot and the Prometheus
  // rendering must come out name-sorted (std::map storage), so repeated
  // exports of equal registries are byte-identical.
  obs::MetricsRegistry a, b;
  for (const char* name : {"zeta", "alpha", "mid"}) a.CounterNamed(name).Add(1);
  for (const char* name : {"mid", "zeta", "alpha"}) b.CounterNamed(name).Add(1);
  const std::string rendered = obs::RenderPrometheus(a.Snapshot());
  EXPECT_EQ(rendered, obs::RenderPrometheus(b.Snapshot()));
  const std::size_t alpha = rendered.find("confanon_alpha_total");
  const std::size_t mid = rendered.find("confanon_mid_total");
  const std::size_t zeta = rendered.find("confanon_zeta_total");
  EXPECT_LT(alpha, mid);
  EXPECT_LT(mid, zeta);
}

// --- exposition server -------------------------------------------------

TEST(ExpositionServer, ParsesListenSpecs) {
  std::string host;
  std::uint16_t port = 1;
  EXPECT_TRUE(obs::ExpositionServer::ParseListenSpec("127.0.0.1:9464", host,
                                                     port));
  EXPECT_EQ(host, "127.0.0.1");
  EXPECT_EQ(port, 9464);
  EXPECT_TRUE(obs::ExpositionServer::ParseListenSpec("localhost:0", host,
                                                     port));
  EXPECT_EQ(port, 0);
  EXPECT_FALSE(obs::ExpositionServer::ParseListenSpec("noport", host, port));
  EXPECT_FALSE(obs::ExpositionServer::ParseListenSpec("h:99999", host, port));
}

/// Blocking one-shot HTTP client against 127.0.0.1:`port`.
std::string HttpGet(std::uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return {};
  }
  const std::string request = "GET " + path +
                              " HTTP/1.1\r\nHost: localhost\r\n"
                              "Connection: close\r\n\r\n";
  (void)!::write(fd, request.data(), request.size());
  std::string response;
  char buffer[4096];
  ssize_t n;
  while ((n = ::read(fd, buffer, sizeof buffer)) > 0) {
    response.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(ExpositionServer, ServesMetricsOverARealSocket) {
  obs::MetricsRegistry registry;
  registry.CounterNamed("core.lines").Add(7);
  obs::SnapshotExporter exporter(&registry);

  obs::ExpositionServer::Options options;  // 127.0.0.1:0 — ephemeral
  obs::ExpositionServer server(options, [&exporter] {
    return obs::RenderPrometheus(exporter.Capture());
  });
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  ASSERT_NE(server.port(), 0);

  const std::string metrics = HttpGet(server.port(), "/metrics");
  EXPECT_TRUE(Contains(metrics, "HTTP/1.1 200 OK"));
  EXPECT_TRUE(Contains(metrics, "text/plain; version=0.0.4"));
  EXPECT_TRUE(Contains(metrics, "confanon_core_lines_total 7"));

  const std::string health = HttpGet(server.port(), "/healthz");
  EXPECT_TRUE(Contains(health, "HTTP/1.1 200 OK"));
  EXPECT_TRUE(Contains(health, "ok"));

  const std::string missing = HttpGet(server.port(), "/nope");
  EXPECT_TRUE(Contains(missing, "HTTP/1.1 404"));

  EXPECT_GE(server.requests_served(), 3u);
  server.Stop();
  EXPECT_FALSE(server.running());
  server.Stop();  // idempotent
}

TEST(ExpositionServer, StartFailureReportsError) {
  obs::ExpositionServer::Options options;
  options.host = "300.300.300.300";  // not a parseable IPv4 address
  obs::ExpositionServer server(options, [] { return std::string(); });
  std::string error;
  EXPECT_FALSE(server.Start(&error));
  EXPECT_FALSE(error.empty());
  server.Stop();  // no-op on an inert server
}

// --- perf counters -----------------------------------------------------

TEST(PerfCounters, OpensOrDegradesGracefully) {
  obs::PerfCounterGroup group;
  const bool opened = group.Open();
  if (opened) {
    // Counting mode: readings must be valid and monotonic.
    const obs::PerfSample first = group.Read();
    ASSERT_TRUE(first.valid);
    volatile std::uint64_t sink = 0;
    for (std::uint64_t i = 0; i < 100000; ++i) sink = sink + i;
    const obs::PerfSample second = group.Read();
    ASSERT_TRUE(second.valid);
    const obs::PerfSample delta = second.Since(first);
    EXPECT_TRUE(delta.valid);
    EXPECT_GT(delta.instructions, 0u);
  } else {
    // Restricted environment (perf_event_paranoid, seccomp, non-Linux):
    // the null object must be inert, not crash.
    EXPECT_FALSE(group.ok());
    EXPECT_FALSE(group.Read().valid);
  }
  group.Close();
  EXPECT_FALSE(group.ok());
}

TEST(PerfCounters, InvalidSamplesNeverDivide) {
  obs::PerfSample sample;  // invalid by default
  EXPECT_EQ(sample.Ipc(), 0.0);
  EXPECT_FALSE(sample.Since(sample).valid);
}

// --- phase profiler ----------------------------------------------------

TEST(PhaseProfiler, ReentrantWindowsCountOverlapOnce) {
  obs::PhaseProfiler profiler(
      {.enable_perf_counters = false, .max_spans = 1024});
  profiler.BeginPhase("anonymize");
  profiler.BeginPhase("anonymize");  // second concurrent holder
  profiler.EndPhase("anonymize");
  profiler.EndPhase("anonymize");
  profiler.EndPhase("anonymize");  // unbalanced: ignored

  const obs::PhaseProfiler::Profile profile = profiler.Finish();
  ASSERT_EQ(profile.phases.size(), 1u);
  EXPECT_EQ(profile.phases[0].name, "anonymize");
  EXPECT_EQ(profile.phases[0].invocations, 2u);
  EXPECT_FALSE(profile.perf_available);
}

TEST(PhaseProfiler, FoldsSpansUnderPhaseRoots) {
  obs::PhaseProfiler profiler({.enable_perf_counters = false});

  const auto span = [&](const char* name, std::int64_t ts, std::int64_t dur,
                        const char* phase) {
    obs::TraceEvent event;
    event.name = name;
    event.ts_us = ts;
    event.dur_us = dur;
    if (phase != nullptr) event.str_args.emplace_back("phase", phase);
    profiler.Write(event);
  };
  // One file span containing two rule spans (child-before-parent arrival,
  // as the engines emit), plus an untagged root.
  span("rule:I1", 100, 30, nullptr);
  span("rule:I4", 130, 20, nullptr);
  span("file:rtr0", 100, 100, "anonymize");
  span("leak-scan", 300, 50, nullptr);

  const obs::PhaseProfiler::Profile profile = profiler.Finish();
  std::map<std::string, obs::PhaseProfiler::SpanStats> by_path;
  for (const auto& stats : profile.spans) by_path[stats.path] = stats;

  ASSERT_TRUE(by_path.count("anonymize;file:rtr0"));
  ASSERT_TRUE(by_path.count("anonymize;file:rtr0;rule:I1"));
  ASSERT_TRUE(by_path.count("anonymize;file:rtr0;rule:I4"));
  ASSERT_TRUE(by_path.count("unphased;leak-scan"));
  // Self time = inclusive minus direct children.
  EXPECT_EQ(by_path["anonymize;file:rtr0"].total_us, 100u);
  EXPECT_EQ(by_path["anonymize;file:rtr0"].self_us, 50u);
  EXPECT_EQ(by_path["anonymize;file:rtr0;rule:I1"].self_us, 30u);

  std::ostringstream folded;
  obs::PhaseProfiler::WriteFolded(profile, folded);
  EXPECT_TRUE(Contains(folded.str(), "anonymize;file:rtr0;rule:I1 30\n"));
  EXPECT_TRUE(Contains(folded.str(), "unphased;leak-scan 50\n"));
}

TEST(PhaseProfiler, ForwardsToDownstreamSink) {
  obs::PhaseProfiler profiler({.enable_perf_counters = false});
  std::ostringstream out;
  {
    obs::JsonlTraceSink downstream(out);
    profiler.set_downstream(&downstream);
    obs::TraceEvent event;
    event.name = "file:x";
    event.ts_us = 1;
    event.dur_us = 2;
    profiler.Write(event);
    EXPECT_EQ(downstream.event_count(), 1u);
  }
  EXPECT_TRUE(Contains(out.str(), "\"name\":\"file:x\""));
}

TEST(PhaseProfiler, RenderTableListsPhasesInFirstBeginOrder) {
  obs::PhaseProfiler profiler({.enable_perf_counters = false});
  profiler.BeginPhase("preload");
  profiler.EndPhase("preload");
  profiler.BeginPhase("anonymize");
  profiler.EndPhase("anonymize");
  const std::string table =
      obs::PhaseProfiler::RenderTable(profiler.Finish());
  const std::size_t preload = table.find("preload");
  const std::size_t anonymize = table.find("anonymize");
  ASSERT_NE(preload, std::string::npos);
  ASSERT_NE(anonymize, std::string::npos);
  EXPECT_LT(preload, anonymize);
  EXPECT_TRUE(Contains(table, "hardware counters unavailable"));
}

}  // namespace
}  // namespace confanon
