#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

namespace confanon::util {
namespace {

TEST(SplitMix64, KnownSequenceIsStable) {
  std::uint64_t state = 0;
  const std::uint64_t first = SplitMix64(state);
  const std::uint64_t second = SplitMix64(state);
  std::uint64_t state2 = 0;
  EXPECT_EQ(SplitMix64(state2), first);
  EXPECT_EQ(SplitMix64(state2), second);
  EXPECT_NE(first, second);
}

TEST(HashSeed, DistinctStringsDistinctSeeds) {
  std::set<std::uint64_t> seeds;
  for (const char* s : {"", "a", "b", "ab", "ba", "network-1", "network-2"}) {
    seeds.insert(HashSeed(s));
  }
  EXPECT_EQ(seeds.size(), 7u);
}

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(Rng, StreamLabelDecorrelates) {
  Rng a(42, "asn"), b(42, "ip");
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Rng, BelowStaysInBounds) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 65536ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.Below(bound), bound);
    }
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(rng.Below(1), 0u);
  }
}

TEST(Rng, BelowCoversAllResidues) {
  Rng rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) {
    seen.insert(rng.Below(7));
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, BetweenInclusive) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.Between(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UnitInHalfOpenInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Unit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(13);
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(rng.Chance(0.0));
    EXPECT_TRUE(rng.Chance(1.0));
  }
}

TEST(Rng, ChanceRoughlyCalibrated) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.Chance(0.25)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.25, 0.03);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(19);
  std::vector<int> items(50);
  std::iota(items.begin(), items.end(), 0);
  auto shuffled = items;
  rng.Shuffle(shuffled);
  EXPECT_NE(shuffled, items);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, items);
}

TEST(Rng, ForkIndependentOfParentContinuation) {
  Rng parent(23);
  Rng child = parent.Fork("child");
  const std::uint64_t parent_next = parent.Next();
  const std::uint64_t child_next = child.Next();
  EXPECT_NE(parent_next, child_next);
}

TEST(Rng, PickReturnsMember) {
  Rng rng(29);
  const std::vector<std::string> items = {"a", "b", "c"};
  for (int i = 0; i < 50; ++i) {
    const std::string& picked = rng.Pick(items);
    EXPECT_TRUE(picked == "a" || picked == "b" || picked == "c");
  }
}

}  // namespace
}  // namespace confanon::util
