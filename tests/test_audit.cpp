// The map-free static auditor (src/audit/): pair-mode isomorphism over
// generator corpora, mutation detection, residue lint, SARIF output.
#include <cctype>
#include <cstddef>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "audit/audit.h"
#include "audit/canonical.h"
#include "audit/lint.h"
#include "audit/sarif.h"
#include "config/document.h"
#include "gen/config_writer.h"
#include "gen/network_gen.h"
#include "junos/writer.h"
#include "obs/metrics.h"
#include "pipeline/pipeline.h"

namespace confanon {
namespace {

enum class CorpusKind { kIos, kJunos, kMixed };

std::vector<config::ConfigFile> MakeCorpus(CorpusKind kind, int routers = 6,
                                           std::uint64_t seed = 7) {
  gen::GeneratorParams params;
  params.seed = seed;
  params.router_count = routers;
  const gen::NetworkSpec network = gen::GenerateNetwork(params, 0);
  std::vector<config::ConfigFile> files;
  for (std::size_t i = 0; i < network.routers.size(); ++i) {
    const bool junos = kind == CorpusKind::kJunos ||
                       (kind == CorpusKind::kMixed && i % 2 == 1);
    files.push_back(junos
                        ? junos::WriteJunosConfig(network.routers[i], network)
                        : gen::WriteConfig(network.routers[i], network));
  }
  return files;
}

std::vector<config::ConfigFile> Anonymize(
    const std::vector<config::ConfigFile>& files, int threads) {
  pipeline::PipelineOptions options;
  options.base.salt = "audit-test-salt";
  options.threads = threads;
  pipeline::CorpusPipeline pipe(options);
  return pipe.AnonymizeCorpus(files);
}

/// True if some finding carries a real line anchor naming `file` on
/// either side — the "file:line-anchored diagnostic" the audit promises.
bool AnchoredTo(const audit::AuditResult& result, const std::string& file) {
  for (const audit::Finding& finding : result.findings) {
    if (finding.anchor.file == file &&
        finding.anchor.line != audit::Anchor::kNoLine) {
      return true;
    }
    if (finding.related.file == file &&
        finding.related.line != audit::Anchor::kNoLine) {
      return true;
    }
  }
  return false;
}

bool HasRule(const audit::AuditResult& result, const std::string& rule) {
  for (const audit::Finding& finding : result.findings) {
    if (finding.rule_id == rule) return true;
  }
  return false;
}

/// Locates a hash token ("h" + 10 hex) in `line`; returns npos if none.
std::size_t FindHashToken(const std::string& line) {
  for (std::size_t i = 0; i + 11 <= line.size(); ++i) {
    if (!audit::IsHashToken(std::string_view(line).substr(i, 11))) continue;
    const bool left_ok = i == 0 || !std::isalnum(
        static_cast<unsigned char>(line[i - 1]));
    const bool right_ok =
        i + 11 == line.size() ||
        !std::isalnum(static_cast<unsigned char>(line[i + 11]));
    if (left_ok && right_ok) return i;
  }
  return std::string::npos;
}

// --- pair mode: clean corpora must audit clean ---

class PairCleanTest : public ::testing::TestWithParam<CorpusKind> {};

TEST_P(PairCleanTest, AnonymizedCorpusIsIsomorphicAtAnyThreadCount) {
  const std::vector<config::ConfigFile> pre = MakeCorpus(GetParam());
  for (const int threads : {1, 4}) {
    const std::vector<config::ConfigFile> post = Anonymize(pre, threads);
    audit::AuditOptions options;
    options.threads = threads;
    const audit::AuditResult result = audit::ComparePair(pre, post, options);
    EXPECT_TRUE(result.findings.empty())
        << "threads=" << threads << "\n"
        << result.ToText();
    EXPECT_EQ(result.files_scanned, pre.size() + post.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Dialects, PairCleanTest,
                         ::testing::Values(CorpusKind::kIos, CorpusKind::kJunos,
                                           CorpusKind::kMixed));

// --- pair mode: hand-mutated post corpora must fail with anchors ---

TEST(AuditPair, RenamedUseSiteIsCaught) {
  const std::vector<config::ConfigFile> pre = MakeCorpus(CorpusKind::kIos);
  std::vector<config::ConfigFile> post = Anonymize(pre, 1);

  // Rename one use site: swap the last hash token of one file for a
  // different (well-formed) hash token.
  bool mutated = false;
  for (std::size_t f = 0; f < post.size() && !mutated; ++f) {
    std::vector<std::string> lines(post[f].lines().begin(), post[f].lines().end());
    for (std::size_t i = lines.size(); i-- > 0 && !mutated;) {
      const std::size_t at = FindHashToken(lines[i]);
      if (at == std::string::npos) continue;
      const std::string original = lines[i].substr(at, 11);
      const std::string replacement =
          original == "h0123456789" ? "h9876543210" : "h0123456789";
      lines[i].replace(at, 11, replacement);
      post[f] = config::ConfigFile(post[f].name(), std::move(lines));
      mutated = true;
    }
  }
  ASSERT_TRUE(mutated);

  const audit::AuditResult result = audit::ComparePair(pre, post);
  EXPECT_TRUE(result.HasErrors()) << result.ToText();
}

TEST(AuditPair, DroppedDefinitionIsCaught) {
  const std::vector<config::ConfigFile> pre = MakeCorpus(CorpusKind::kIos);
  std::vector<config::ConfigFile> post = Anonymize(pre, 1);

  // Drop one definition line (a route-map or prefix-list header).
  std::string mutated_file;
  for (std::size_t f = 0; f < post.size() && mutated_file.empty(); ++f) {
    std::vector<std::string> lines(post[f].lines().begin(), post[f].lines().end());
    for (std::size_t i = 0; i < lines.size(); ++i) {
      if (lines[i].rfind("route-map ", 0) == 0 ||
          lines[i].rfind("ip prefix-list ", 0) == 0) {
        lines.erase(lines.begin() + static_cast<std::ptrdiff_t>(i));
        mutated_file = post[f].name();
        post[f] = config::ConfigFile(post[f].name(), std::move(lines));
        break;
      }
    }
  }
  ASSERT_FALSE(mutated_file.empty());

  const audit::AuditResult result = audit::ComparePair(pre, post);
  EXPECT_TRUE(result.HasErrors()) << result.ToText();
  EXPECT_TRUE(AnchoredTo(result, mutated_file)) << result.ToText();
}

TEST(AuditPair, ReinsertedOriginalIdentifierIsCaught) {
  const std::vector<config::ConfigFile> pre = MakeCorpus(CorpusKind::kIos);
  std::vector<config::ConfigFile> post = Anonymize(pre, 1);

  // Find the original hostname and the hash it became, then put the
  // original back everywhere in that file (shape-preserving, so the file
  // still pairs — only AUD-P005/P003 can catch it).
  std::string original;
  for (const std::string_view line : pre[0].lines()) {
    if (line.rfind("hostname ", 0) == 0) {
      original = line.substr(std::string("hostname ").size());
      break;
    }
  }
  ASSERT_FALSE(original.empty());
  std::string hashed;
  std::vector<std::string> lines(post[0].lines().begin(), post[0].lines().end());
  for (const std::string& line : lines) {
    if (line.rfind("hostname ", 0) == 0) {
      hashed = line.substr(std::string("hostname ").size());
      break;
    }
  }
  ASSERT_TRUE(audit::IsHashToken(hashed));
  for (std::string& line : lines) {
    for (std::size_t at = line.find(hashed); at != std::string::npos;
         at = line.find(hashed, at + original.size())) {
      line.replace(at, hashed.size(), original);
    }
  }
  post[0] = config::ConfigFile(post[0].name(), std::move(lines));

  const audit::AuditResult result = audit::ComparePair(pre, post);
  EXPECT_TRUE(result.HasErrors()) << result.ToText();
  EXPECT_TRUE(HasRule(result, audit::kRuleIdentitySurvived)) << result.ToText();
  bool anchored = false;
  for (const audit::Finding& finding : result.findings) {
    if (finding.rule_id == audit::kRuleIdentitySurvived &&
        finding.anchor.line != audit::Anchor::kNoLine &&
        finding.message.find(original) != std::string::npos) {
      anchored = true;
    }
  }
  EXPECT_TRUE(anchored) << result.ToText();
}

TEST(AuditPair, MissingFileIsReportedAsUnpaired) {
  const std::vector<config::ConfigFile> pre = MakeCorpus(CorpusKind::kIos, 4);
  std::vector<config::ConfigFile> post = Anonymize(pre, 1);
  post.pop_back();
  const audit::AuditResult result = audit::ComparePair(pre, post);
  EXPECT_TRUE(result.HasErrors());
  EXPECT_TRUE(HasRule(result, audit::kRuleUnpairedFile)) << result.ToText();
}

// --- residue lint ---

TEST(AuditLint, AnonymizedOutputHasNoErrorResidue) {
  for (const CorpusKind kind :
       {CorpusKind::kIos, CorpusKind::kJunos, CorpusKind::kMixed}) {
    const std::vector<config::ConfigFile> post =
        Anonymize(MakeCorpus(kind), 1);
    const audit::AuditResult result = audit::LintCorpus(post);
    EXPECT_EQ(result.ErrorCount(), 0u) << result.ToText();
  }
}

TEST(AuditLint, OriginalCorpusIsFullOfResidue) {
  const audit::AuditResult result =
      audit::LintCorpus(MakeCorpus(CorpusKind::kIos));
  EXPECT_TRUE(result.HasErrors());
  EXPECT_TRUE(HasRule(result, audit::kRuleHostnameResidue)) << result.ToText();
}

TEST(AuditLint, DanglingUseAndDeadDefinitionAreReported) {
  const std::vector<config::ConfigFile> corpus = {config::ConfigFile::FromText(
      "r1",
      "interface Loopback0\n"
      " ip address 10.0.0.1 255.255.255.255\n"
      "router ospf 10\n"
      " passive-interface Loopback9\n"
      "route-map unused-map permit 10\n"
      "!\n")};
  const audit::AuditResult result = audit::LintCorpus(corpus);
  EXPECT_TRUE(HasRule(result, audit::kRuleDanglingUse)) << result.ToText();
  EXPECT_TRUE(HasRule(result, audit::kRuleDeadDef)) << result.ToText();
  for (const audit::Finding& finding : result.findings) {
    if (finding.rule_id == audit::kRuleDanglingUse) {
      EXPECT_EQ(finding.severity, audit::Severity::kWarning);
      EXPECT_EQ(finding.anchor.line, 3u);  // zero-based passive-interface
    }
    if (finding.rule_id == audit::kRuleDeadDef) {
      EXPECT_EQ(finding.severity, audit::Severity::kNote);
      EXPECT_EQ(finding.anchor.line, 4u);
    }
  }
}

TEST(AuditLint, MetricsAreRecorded) {
  obs::MetricsRegistry metrics;
  audit::AuditOptions options;
  options.metrics = &metrics;
  const std::vector<config::ConfigFile> corpus = MakeCorpus(CorpusKind::kIos);
  const audit::AuditResult result = audit::LintCorpus(corpus, options);
  EXPECT_EQ(metrics.CounterNamed("audit.files").Value(), corpus.size());
  EXPECT_EQ(metrics.HistogramNamed("audit.scan_ns").Count(), corpus.size());
  EXPECT_EQ(metrics.CounterNamed("audit.findings").Value(),
            result.findings.size());
}

// --- SARIF ---

/// Minimal JSON syntax checker: enough to prove the SARIF log is
/// well-formed JSON without a JSON library in the test image.
class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : text_(text) {}

  bool Valid() {
    SkipSpace();
    if (!Value()) return false;
    SkipSpace();
    return pos_ == text_.size();
  }

 private:
  bool Value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }
  bool Object() {
    ++pos_;  // '{'
    SkipSpace();
    if (Peek('}')) return true;
    for (;;) {
      SkipSpace();
      if (!String()) return false;
      SkipSpace();
      if (!Expect(':')) return false;
      SkipSpace();
      if (!Value()) return false;
      SkipSpace();
      if (Peek('}')) return true;
      if (!Expect(',')) return false;
    }
  }
  bool Array() {
    ++pos_;  // '['
    SkipSpace();
    if (Peek(']')) return true;
    for (;;) {
      SkipSpace();
      if (!Value()) return false;
      SkipSpace();
      if (Peek(']')) return true;
      if (!Expect(',')) return false;
    }
  }
  bool String() {
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      pos_ += text_[pos_] == '\\' ? 2 : 1;
    }
    return Expect('"');
  }
  bool Number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool Literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }
  bool Peek(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool Expect(char c) { return Peek(c); }
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

TEST(AuditSarif, OutputIsWellFormedAndCarriesFindings) {
  // A result rich in findings: lint of an un-anonymized corpus.
  const audit::AuditResult result =
      audit::LintCorpus(MakeCorpus(CorpusKind::kIos));
  ASSERT_FALSE(result.findings.empty());
  const std::string sarif = audit::ToSarif(result);
  EXPECT_TRUE(JsonChecker(sarif).Valid()) << sarif.substr(0, 400);
  EXPECT_NE(sarif.find("\"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("confanon_audit"), std::string::npos);
  EXPECT_NE(sarif.find("sarif-2.1.0.json"), std::string::npos);
  EXPECT_NE(sarif.find(result.findings[0].rule_id), std::string::npos);
  // Every catalogued rule rides along in the driver descriptor.
  for (const audit::RuleInfo& rule : audit::RuleCatalog()) {
    EXPECT_NE(sarif.find(rule.id), std::string::npos) << rule.id;
  }
}

TEST(AuditSarif, EmptyResultIsStillValid) {
  const std::string sarif = audit::ToSarif(audit::AuditResult{});
  EXPECT_TRUE(JsonChecker(sarif).Valid());
  EXPECT_NE(sarif.find("\"results\""), std::string::npos);
}

}  // namespace
}  // namespace confanon
