// Tests for the extended analysis features: OSPF areas, network-wide BGP
// session pairing, prefix-list extraction, regex-usage scanning, and the
// anonymizer's handling of the richer IOS objects (named community lists,
// prefix lists, pre-shared keys).
#include <gtest/gtest.h>

#include "util/rng.h"

#include "analysis/design_extract.h"
#include "analysis/linkage.h"
#include "analysis/regex_usage.h"
#include "core/anonymizer.h"
#include "gen/config_writer.h"
#include "gen/network_gen.h"

namespace confanon::analysis {
namespace {

config::ConfigFile File(std::string name, std::string_view text) {
  return config::ConfigFile::FromText(std::move(name), text);
}

// --- OSPF areas ---

TEST(DesignExtractExt, OspfAreas) {
  const auto configs = std::vector<config::ConfigFile>{File("r1", R"(hostname r1
router ospf 7
 network 10.0.0.0 0.0.255.255 area 0
 network 10.1.0.0 0.0.255.255 area 1
 network 10.2.0.0 0.0.255.255 area 1
)")};
  const NetworkDesign design = ExtractDesign(configs);
  ASSERT_EQ(design.routers[0].processes.size(), 1u);
  const ProcessDesign& ospf = design.routers[0].processes[0];
  EXPECT_EQ(ospf.process_id, 7);
  EXPECT_EQ(ospf.ospf_areas, (std::vector<int>{0, 1}));
}

TEST(DesignExtractExt, RipHasNoAreas) {
  const auto configs = std::vector<config::ConfigFile>{
      File("r1", "router rip\n network 10.0.0.0\n")};
  const NetworkDesign design = ExtractDesign(configs);
  EXPECT_TRUE(design.routers[0].processes[0].ospf_areas.empty());
}

// --- BGP session pairing ---

TEST(DesignExtractExt, InternalSessionSymmetric) {
  const auto configs = std::vector<config::ConfigFile>{
      File("a", R"(hostname a
interface Loopback0
 ip address 10.0.0.1 255.255.255.255
router bgp 100
 neighbor 10.0.0.2 remote-as 100
)"),
      File("b", R"(hostname b
interface Loopback0
 ip address 10.0.0.2 255.255.255.255
router bgp 100
 neighbor 10.0.0.1 remote-as 100
)")};
  const NetworkDesign design = ExtractDesign(configs);
  ASSERT_EQ(design.bgp_sessions.size(), 1u);
  EXPECT_EQ(design.bgp_sessions[0].router_a, "a");
  EXPECT_EQ(design.bgp_sessions[0].router_b, "b");
  EXPECT_FALSE(design.bgp_sessions[0].external);
  EXPECT_TRUE(design.bgp_sessions[0].symmetric);
}

TEST(DesignExtractExt, HalfConfiguredSessionIsAsymmetric) {
  const auto configs = std::vector<config::ConfigFile>{
      File("a", R"(hostname a
interface Loopback0
 ip address 10.0.0.1 255.255.255.255
router bgp 100
 neighbor 10.0.0.2 remote-as 100
)"),
      File("b", R"(hostname b
interface Loopback0
 ip address 10.0.0.2 255.255.255.255
)")};
  const NetworkDesign design = ExtractDesign(configs);
  ASSERT_EQ(design.bgp_sessions.size(), 1u);
  EXPECT_FALSE(design.bgp_sessions[0].symmetric);
}

TEST(DesignExtractExt, ExternalSessionDetected) {
  const auto configs = std::vector<config::ConfigFile>{File("a", R"(hostname a
router bgp 100
 neighbor 4.4.4.4 remote-as 701
)")};
  const NetworkDesign design = ExtractDesign(configs);
  ASSERT_EQ(design.bgp_sessions.size(), 1u);
  EXPECT_TRUE(design.bgp_sessions[0].external);
  EXPECT_EQ(design.bgp_sessions[0].external_peer.ToString(), "4.4.4.4");
}

// --- prefix-list extraction ---

TEST(DesignExtractExt, PrefixListEntries) {
  const auto configs = std::vector<config::ConfigFile>{File("r", R"(hostname r
ip prefix-list CUST-out seq 5 permit 10.1.0.0/24 le 28
ip prefix-list CUST-out seq 10 deny 0.0.0.0/0 ge 8
route-map OUT permit 10
 match ip address prefix-list CUST-out
)")};
  const NetworkDesign design = ExtractDesign(configs);
  const RouterDesign& router = design.routers[0];
  ASSERT_TRUE(router.prefix_lists.contains("CUST-out"));
  const auto& entries = router.prefix_lists.at("CUST-out");
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].sequence, 5);
  EXPECT_TRUE(entries[0].permit);
  EXPECT_EQ(entries[0].prefix.ToString(), "10.1.0.0/24");
  EXPECT_EQ(entries[0].le, 28);
  EXPECT_EQ(entries[0].ge, 0);
  EXPECT_FALSE(entries[1].permit);
  EXPECT_EQ(entries[1].ge, 8);
  // The route-map clause references the list by name.
  const auto& clause = router.route_maps.at("OUT")[0];
  EXPECT_EQ(clause.references,
            (std::vector<std::pair<std::string, std::string>>{
                {"prefix-list", "CUST-out"}}));
}

TEST(DesignExtractExt, MapDesignMapsNamedReferences) {
  const auto configs = std::vector<config::ConfigFile>{File("r", R"(hostname r
ip prefix-list CUST-out seq 5 permit 10.1.0.0/24
route-map OUT permit 10
 match ip address prefix-list CUST-out
 match community PEERS-comm
)")};
  const NetworkDesign design = ExtractDesign(configs);
  const NetworkDesign mapped = MapDesign(
      design, [](const std::string& s) { return "X" + s; },
      [](net::Ipv4Address a) { return a; },
      [](std::uint32_t a) { return a; });
  const RouterDesign& router = mapped.routers[0];
  EXPECT_TRUE(router.prefix_lists.contains("XCUST-out"));
  const auto& clause = router.route_maps.at("XOUT")[0];
  EXPECT_EQ(clause.references,
            (std::vector<std::pair<std::string, std::string>>{
                {"prefix-list", "XCUST-out"}, {"community", "XPEERS-comm"}}));
}

// --- regex usage scanner ---

TEST(RegexUsage, DetectsPublicRange) {
  const auto configs = std::vector<config::ConfigFile>{
      File("r", "ip as-path access-list 5 permit _70[1-5]_\n")};
  const RegexUsage usage = DetectRegexUsage(configs);
  EXPECT_TRUE(usage.asn_range_public);
  EXPECT_FALSE(usage.asn_range_private);
  EXPECT_FALSE(usage.asn_alternation);
}

TEST(RegexUsage, DetectsPrivateRange) {
  const auto configs = std::vector<config::ConfigFile>{
      File("r", "ip as-path access-list 5 permit _6451[2-5]_\n")};
  const RegexUsage usage = DetectRegexUsage(configs);
  EXPECT_FALSE(usage.asn_range_public);
  EXPECT_TRUE(usage.asn_range_private);
}

TEST(RegexUsage, DetectsAlternation) {
  const auto configs = std::vector<config::ConfigFile>{
      File("r", "ip as-path access-list 5 permit (_701_|_1239_)\n")};
  EXPECT_TRUE(DetectRegexUsage(configs).asn_alternation);
}

TEST(RegexUsage, PlainLiteralIsNoFeature) {
  const auto configs = std::vector<config::ConfigFile>{
      File("r", "ip as-path access-list 5 permit _701_\n")};
  const RegexUsage usage = DetectRegexUsage(configs);
  EXPECT_FALSE(usage.asn_range_public);
  EXPECT_FALSE(usage.asn_alternation);
}

TEST(RegexUsage, DetectsCommunityRegexAndRanges) {
  const auto with_range = std::vector<config::ConfigFile>{
      File("r", "ip community-list 100 permit 701:7[1-5]..\n")};
  RegexUsage usage = DetectRegexUsage(with_range);
  EXPECT_TRUE(usage.community_regex);
  EXPECT_TRUE(usage.community_range);

  const auto without_range = std::vector<config::ConfigFile>{
      File("r", "ip community-list 100 permit 701:(7100|7200)\n")};
  usage = DetectRegexUsage(without_range);
  EXPECT_TRUE(usage.community_regex);
  EXPECT_FALSE(usage.community_range);

  const auto literal = std::vector<config::ConfigFile>{
      File("r", "ip community-list 5 permit 701:100\n")};
  usage = DetectRegexUsage(literal);
  EXPECT_FALSE(usage.community_regex);
}

// --- prefix-linkage analysis ---

TEST(Linkage, NoCompromiseNoKnowledge) {
  const std::vector<net::Ipv4Address> addresses = {
      *net::Ipv4Address::Parse("10.0.0.1"),
      *net::Ipv4Address::Parse("10.0.0.2"),
  };
  const LinkageResult r = MeasurePrefixLinkage(addresses, 0);
  EXPECT_EQ(r.compromised, 0u);
  EXPECT_EQ(r.victims, 2u);
  EXPECT_DOUBLE_EQ(r.mean_known_bits, 0.0);
}

TEST(Linkage, SingleCompromiseRevealsSharedPrefix) {
  const std::vector<net::Ipv4Address> addresses = {
      *net::Ipv4Address::Parse("10.1.2.3"),   // compromised
      *net::Ipv4Address::Parse("10.1.2.99"),  // shares /25 -> 25 bits
      *net::Ipv4Address::Parse("192.168.0.1"),  // shares 0 bits
  };
  const LinkageResult r = MeasurePrefixLinkage(addresses, 1);
  EXPECT_EQ(r.victims, 2u);
  // 10.1.2.3 vs 10.1.2.99: 3=00000011, 99=01100011 -> first differing bit
  // is bit 25 (within the last octet), so 25 leading bits are shared.
  EXPECT_DOUBLE_EQ(r.max_known_bits, 25.0);
  EXPECT_EQ(r.victims_within_24, 1u);
}

TEST(Linkage, MoreCompromisesNeverReduceKnowledge) {
  // Fixed victim set: the compromised pool is a prefix of the list, and
  // each run draws k from that pool while the victims stay identical, so
  // mean inferable bits must be monotone non-decreasing in k.
  util::Rng rng(271828);
  std::vector<net::Ipv4Address> pool, victims;
  for (int i = 0; i < 25; ++i) {
    pool.emplace_back(static_cast<std::uint32_t>(rng.Next()));
  }
  for (int i = 0; i < 175; ++i) {
    victims.emplace_back(static_cast<std::uint32_t>(rng.Next()));
  }
  double previous = -1;
  for (std::size_t k : {std::size_t{1}, std::size_t{5}, std::size_t{25}}) {
    std::vector<net::Ipv4Address> addresses(pool.begin(),
                                            pool.begin() + static_cast<long>(k));
    addresses.insert(addresses.end(), victims.begin(), victims.end());
    const LinkageResult r = MeasurePrefixLinkage(addresses, k);
    EXPECT_EQ(r.victims, victims.size());
    EXPECT_GE(r.mean_known_bits + 1e-9, previous);
    previous = r.mean_known_bits;
  }
}

}  // namespace
}  // namespace confanon::analysis

// --- anonymizer handling of the richer objects ---
namespace confanon::core {
namespace {

config::ConfigFile File(std::string_view text) {
  return config::ConfigFile::FromText("router", text);
}

std::string Anonymize(std::string_view text) {
  AnonymizerOptions options;
  options.salt = "ext-salt";
  Anonymizer anonymizer(std::move(options));
  return anonymizer.AnonymizeNetwork({File(text)}).front().ToText();
}

TEST(AnonymizerExt, PrefixListNameHashedPrefixMappedBoundsKept) {
  const std::string out =
      Anonymize("ip prefix-list ACME-out seq 5 permit 12.34.0.0/16 le 24\n");
  EXPECT_EQ(out.find("ACME"), std::string::npos);
  EXPECT_EQ(out.find("12.34.0.0"), std::string::npos);
  EXPECT_NE(out.find("seq 5"), std::string::npos);
  EXPECT_NE(out.find("le 24"), std::string::npos);
  EXPECT_NE(out.find("/16"), std::string::npos);
}

TEST(AnonymizerExt, PrefixListReferenceConsistent) {
  AnonymizerOptions options;
  options.salt = "ext-salt";
  Anonymizer anonymizer(std::move(options));
  const auto out = anonymizer.AnonymizeNetwork({File(
      "ip prefix-list ACME-out seq 5 permit 12.34.0.0/16\n"
      "route-map X permit 10\n"
      " match ip address prefix-list ACME-out\n")});
  const std::string hashed = anonymizer.string_hasher().Hash("ACME-out");
  const std::string text = out.front().ToText();
  EXPECT_NE(text.find("ip prefix-list " + hashed), std::string::npos);
  EXPECT_NE(text.find("prefix-list " + hashed + "\n"), std::string::npos);
}

TEST(AnonymizerExt, NamedCommunityListHandled) {
  AnonymizerOptions options;
  options.salt = "ext-salt";
  Anonymizer anonymizer(std::move(options));
  const auto out = anonymizer.AnonymizeNetwork({File(
      "ip community-list standard UUNET-comm permit 701:120\n"
      "route-map X permit 10\n"
      " match community UUNET-comm\n")});
  const std::string text = out.front().ToText();
  EXPECT_EQ(text.find("UUNET"), std::string::npos);
  EXPECT_EQ(text.find("701:120"), std::string::npos);
  const std::string hashed = anonymizer.string_hasher().Hash("UUNET-comm");
  EXPECT_NE(text.find("standard " + hashed), std::string::npos);
  EXPECT_NE(text.find("match community " + hashed), std::string::npos);
}

TEST(AnonymizerExt, IsakmpKeyHashedPeerMapped) {
  const std::string out =
      Anonymize("crypto isakmp key acmeVpnKey address 4.5.6.7\n");
  EXPECT_EQ(out.find("acmeVpnKey"), std::string::npos);
  EXPECT_EQ(out.find("4.5.6.7"), std::string::npos);
  EXPECT_NE(out.find("crypto isakmp key h"), std::string::npos);
  EXPECT_NE(out.find("address"), std::string::npos);
}

TEST(AnonymizerExt, EndToEndDesignWithNewObjectsValidates) {
  // A generated network guaranteed to use the new policy styles.
  gen::GeneratorParams params;
  params.seed = 2222;  // seeds chosen so styles trigger (checked below)
  params.router_count = 16;
  for (std::uint64_t seed = 2222; seed < 2260; ++seed) {
    params.seed = seed;
    const auto network = gen::GenerateNetwork(params, 0);
    const auto pre = gen::WriteNetworkConfigs(network);
    bool has_prefix_list = false, has_named_list = false;
    for (const auto& file : pre) {
      const std::string text = file.ToText();
      has_prefix_list |= text.find("ip prefix-list") != std::string::npos;
      has_named_list |=
          text.find("ip community-list standard") != std::string::npos ||
          text.find("ip community-list expanded") != std::string::npos;
    }
    if (!(has_prefix_list && has_named_list)) continue;

    AnonymizerOptions options;
    options.salt = "ext-e2e";
    Anonymizer anonymizer(std::move(options));
    const auto post = anonymizer.AnonymizeNetwork(pre);
    const analysis::NetworkDesign pre_design = analysis::ExtractDesign(pre);
    const analysis::NetworkDesign post_design =
        analysis::ExtractDesign(post);
    // Prefix-list structure must survive: same number of lists and
    // entries per router.
    ASSERT_EQ(pre_design.routers.size(), post_design.routers.size());
    std::size_t pre_lists = 0, post_lists = 0;
    for (const auto& router : pre_design.routers) {
      pre_lists += router.prefix_lists.size();
    }
    for (const auto& router : post_design.routers) {
      post_lists += router.prefix_lists.size();
    }
    EXPECT_EQ(pre_lists, post_lists);
    EXPECT_GT(pre_lists, 0u);
    return;  // one qualifying seed is enough
  }
  FAIL() << "no seed produced both prefix-lists and named community lists";
}

}  // namespace
}  // namespace confanon::core
