// libFuzzer harness over the decoy renderer (src/defense/decoy_render).
//
// Bytes in, three properties out:
//
//  1. Rendering never crashes: arbitrary styles, names, subnets, ASNs,
//     and nesting depths decoded from the fuzz input must render without
//     UB or thrown-through exceptions.
//  2. Tokenize/Render round-trip: every rendered line must survive the
//     zero-copy IOS and JunOS tokenizers byte-for-byte, like any other
//     config line — a decoy that the parsers mangle would diverge from
//     real output on the next pipeline pass.
//  3. Decoy lines anonymize cleanly: a synthetic file assembled from the
//     rendered fragments runs through both anonymization engines without
//     crashing (decoys are inserted into files that later consumers may
//     re-anonymize; the engines must treat them like any config text).
//
// Built only under -DCONFANON_FUZZ=ON; see fuzz_anonymize_line.cpp for
// the Clang-libFuzzer vs standalone-replay split.
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "config/document.h"
#include "config/tokenizer.h"
#include "core/anonymizer.h"
#include "defense/decoy_render.h"
#include "junos/anonymizer.h"
#include "junos/tokenizer.h"
#include "net/prefix.h"

namespace {

using confanon::defense::IosStyle;

/// Deterministic byte-stream reader: the fuzz input IS the parameter
/// tape. Runs dry to zeros, so short inputs still exercise everything.
class Tape {
 public:
  Tape(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::uint8_t Byte() { return pos_ < size_ ? data_[pos_++] : 0; }

  std::uint32_t U32() {
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i) value = value << 8 | Byte();
    return value;
  }

  std::uint64_t U64() {
    return static_cast<std::uint64_t>(U32()) << 32 | U32();
  }

  /// A short identifier-ish string: length and bytes off the tape, with
  /// newlines stripped so the "one fragment line = one config line"
  /// accounting below stays valid.
  std::string Name() {
    const std::size_t length = Byte() % 24;
    std::string name;
    name.reserve(length);
    for (std::size_t i = 0; i < length; ++i) {
      char c = static_cast<char>(Byte());
      if (c == '\n' || c == '\r' || c == '\0') c = '_';
      name.push_back(c);
    }
    return name;
  }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

void CheckRoundTrip(std::string_view line) {
  const confanon::config::LineTokens tokens =
      confanon::config::TokenizeLine(line);
  if (tokens.Render() != line) __builtin_trap();

  confanon::junos::JunosLine junos_line;
  confanon::junos::TokenizeJunosLineInto(line, junos_line);
  if (junos_line.Render() != line) __builtin_trap();
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  Tape tape(data, size);

  // Style bytes: arbitrary indent/gap widths, not just the 1/2 the prober
  // emits — the renderers must not depend on the prober's range.
  IosStyle style;
  style.indent = std::string(tape.Byte() % 5, ' ');
  style.gap = std::string(1 + tape.Byte() % 4, ' ');

  const int length = tape.Byte() % 33;  // 0..32
  const confanon::net::Prefix subnet(
      confanon::net::Ipv4Address(tape.U32()), length);
  const std::uint32_t asn = tape.U32();
  const confanon::net::Ipv4Address peer(tape.U32());
  const int depth = tape.Byte() % 6;
  const int unit = tape.Byte() % 1000;

  std::vector<std::string> lines;
  const auto collect = [&lines](const std::vector<std::string>& block) {
    lines.insert(lines.end(), block.begin(), block.end());
  };

  collect(confanon::defense::RenderIosDecoyInterface(style, tape.Name(),
                                                     subnet));
  lines.push_back(confanon::defense::RenderIosDecoyNeighbor(style, peer, asn));
  collect(confanon::defense::RenderIosDecoyBgpBlock(
      style, tape.U32(), {{peer, asn}, {confanon::net::Ipv4Address(tape.U32()),
                                        tape.U32()}}));
  collect(confanon::defense::RenderJunosDecoyInterface(tape.Name(), unit,
                                                       subnet, depth));
  collect(confanon::defense::RenderJunosDecoyGroup(
      confanon::defense::HashLikeToken(tape.U64()), asn, peer, depth));

  std::string text;
  for (const std::string& line : lines) {
    CheckRoundTrip(line);
    text += line;
    text += '\n';
  }

  const auto file = confanon::config::ConfigFile::FromText("decoys.cfg", text);
  {
    confanon::core::AnonymizerOptions options;
    options.salt = "fuzz-salt";
    confanon::core::Anonymizer engine(options);
    (void)engine.AnonymizeNetwork({file});
  }
  {
    confanon::junos::JunosAnonymizerOptions options;
    options.salt = "fuzz-salt";
    confanon::junos::JunosAnonymizer engine(options);
    (void)engine.AnonymizeNetwork({file});
  }
  return 0;
}

#if !defined(CONFANON_FUZZ_LIBFUZZER)
// Standalone replay driver (same shape as fuzz_anonymize_line.cpp).
#include <iostream>

#include "util/io.h"

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string error;
    const auto bytes = confanon::util::ReadFileFully(argv[i], &error);
    if (!bytes) {
      std::cerr << error << "\n";
      return 1;
    }
    LLVMFuzzerTestOneInput(
        reinterpret_cast<const std::uint8_t*>(bytes->data()), bytes->size());
    std::cout << "replayed " << argv[i] << " (" << bytes->size()
              << " bytes)\n";
  }
  return 0;
}
#endif
