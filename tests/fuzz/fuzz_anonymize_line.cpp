// libFuzzer harness over the per-line hot path.
//
// Bytes in, two properties out:
//
//  1. Tokenize/Render round-trip: for every line, Render() of the
//     untouched token vector must reproduce the input bytes exactly —
//     the zero-copy tokenizer may never lose or reorder a byte.
//  2. Anonymization never crashes: the full engine (IOS and JunOS rule
//     packs, including the batched SHA-1 word hashing and the deferred
//     line rendering it introduces) must accept arbitrary input without
//     UB — crashes, sanitizer reports, or thrown-through exceptions.
//
// Built only under -DCONFANON_FUZZ=ON. With a Clang toolchain the target
// links -fsanitize=fuzzer; elsewhere (the CI image ships GCC only) a
// standalone main() replays files passed on the command line, so the same
// binary doubles as a regression runner over tests/data/.
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "config/document.h"
#include "config/tokenizer.h"
#include "core/anonymizer.h"
#include "junos/anonymizer.h"
#include "junos/tokenizer.h"

namespace {

void CheckRoundTrip(std::string_view line) {
  const confanon::config::LineTokens tokens =
      confanon::config::TokenizeLine(line);
  if (tokens.Render() != line) __builtin_trap();

  confanon::junos::JunosLine junos_line;
  confanon::junos::TokenizeJunosLineInto(line, junos_line);
  if (junos_line.Render() != line) __builtin_trap();
}

void AnonymizeBoth(const std::string& text) {
  const auto file = confanon::config::ConfigFile::FromText("fuzz.cfg", text);
  {
    confanon::core::AnonymizerOptions options;
    options.salt = "fuzz-salt";
    confanon::core::Anonymizer engine(options);
    (void)engine.AnonymizeNetwork({file});
  }
  {
    confanon::junos::JunosAnonymizerOptions options;
    options.salt = "fuzz-salt";
    confanon::junos::JunosAnonymizer engine(options);
    (void)engine.AnonymizeNetwork({file});
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);

  // Per-line round-trip on the raw tokenizers (no rewrites fired).
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t end = text.find('\n', start);
    const std::size_t stop = end == std::string::npos ? text.size() : end;
    CheckRoundTrip(std::string_view(text).substr(start, stop - start));
    if (end == std::string::npos) break;
    start = end + 1;
  }

  AnonymizeBoth(text);
  return 0;
}

#if !defined(CONFANON_FUZZ_LIBFUZZER)
// Standalone replay driver for toolchains without -fsanitize=fuzzer:
// feeds every file named on the command line through the fuzz entry
// point once. Exit 0 means no property tripped.
#include <iostream>

#include "util/io.h"

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string error;
    const auto bytes = confanon::util::ReadFileFully(argv[i], &error);
    if (!bytes) {
      std::cerr << error << "\n";
      return 1;
    }
    LLVMFuzzerTestOneInput(
        reinterpret_cast<const std::uint8_t*>(bytes->data()), bytes->size());
    std::cout << "replayed " << argv[i] << " (" << bytes->size()
              << " bytes)\n";
  }
  return 0;
}
#endif
