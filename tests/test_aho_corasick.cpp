#include "util/aho_corasick.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "util/rng.h"
#include "util/strings.h"

namespace confanon::util {
namespace {

std::set<std::pair<std::size_t, std::size_t>> MatchSet(
    const AhoCorasick& automaton, std::string_view text) {
  std::set<std::pair<std::size_t, std::size_t>> result;
  for (const auto& match : automaton.FindAll(text)) {
    result.insert({match.pattern_index, match.begin});
  }
  return result;
}

TEST(AhoCorasick, SinglePattern) {
  const AhoCorasick automaton({"701"});
  EXPECT_EQ(MatchSet(automaton, "701"),
            (std::set<std::pair<std::size_t, std::size_t>>{{0, 0}}));
  EXPECT_EQ(MatchSet(automaton, "x701y701"),
            (std::set<std::pair<std::size_t, std::size_t>>{{0, 1}, {0, 5}}));
  EXPECT_TRUE(MatchSet(automaton, "70 1").empty());
}

TEST(AhoCorasick, OverlappingPatterns) {
  const AhoCorasick automaton({"ab", "abc", "bc", "c"});
  const auto matches = MatchSet(automaton, "abc");
  EXPECT_TRUE(matches.contains({0, 0}));  // ab
  EXPECT_TRUE(matches.contains({1, 0}));  // abc
  EXPECT_TRUE(matches.contains({2, 1}));  // bc
  EXPECT_TRUE(matches.contains({3, 2}));  // c
  EXPECT_EQ(matches.size(), 4u);
}

TEST(AhoCorasick, SuffixChainViaFailLinks) {
  // "ushers" style classic: patterns that are suffixes of each other.
  const AhoCorasick automaton({"he", "she", "his", "hers"});
  const auto matches = MatchSet(automaton, "ushers");
  EXPECT_TRUE(matches.contains({1, 1}));  // she
  EXPECT_TRUE(matches.contains({0, 2}));  // he
  EXPECT_TRUE(matches.contains({3, 2}));  // hers
  EXPECT_EQ(matches.size(), 3u);
}

TEST(AhoCorasick, CaseInsensitive) {
  const AhoCorasick automaton({"UUNET"});
  EXPECT_FALSE(MatchSet(automaton, "route-map uunet-import").empty());
  EXPECT_FALSE(MatchSet(automaton, "UuNeT").empty());
}

TEST(AhoCorasick, EmptyAndDuplicatePatterns) {
  const AhoCorasick automaton({"", "x", "x"});
  const auto matches = MatchSet(automaton, "x");
  EXPECT_TRUE(matches.contains({1, 0}));
  EXPECT_TRUE(matches.contains({2, 0}));
  EXPECT_EQ(matches.size(), 2u);  // the empty pattern never matches
}

TEST(AhoCorasick, AnyMatch) {
  const AhoCorasick automaton({"1239", "701"});
  EXPECT_TRUE(automaton.AnyMatch("as-path 1239"));
  EXPECT_FALSE(automaton.AnyMatch("as-path 70 1 23 9"));
  EXPECT_FALSE(automaton.AnyMatch(""));
}

TEST(AhoCorasick, NoPatterns) {
  const AhoCorasick automaton({});
  EXPECT_FALSE(automaton.AnyMatch("anything"));
  EXPECT_TRUE(automaton.FindAll("anything").empty());
}

TEST(AhoCorasick, MatchOffsetsAreExact) {
  const AhoCorasick automaton({"1.2.3.4"});
  const auto matches = automaton.FindAll("ip route 1.2.3.4 255.0.0.0");
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].begin, 9u);
  EXPECT_EQ(matches[0].end, 16u);
}

TEST(AhoCorasick, AgreesWithNaiveSearchOnRandomInputs) {
  util::Rng rng(314159);
  const char alphabet[] = "ab1.";
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<std::string> patterns;
    const int pattern_count = static_cast<int>(rng.Between(1, 8));
    for (int p = 0; p < pattern_count; ++p) {
      std::string pattern;
      const int length = static_cast<int>(rng.Between(1, 4));
      for (int j = 0; j < length; ++j) {
        pattern += alphabet[static_cast<std::size_t>(rng.Below(4))];
      }
      patterns.push_back(pattern);
    }
    const AhoCorasick automaton(patterns);
    for (int s = 0; s < 20; ++s) {
      std::string text;
      const int length = static_cast<int>(rng.Below(24));
      for (int j = 0; j < length; ++j) {
        text += alphabet[static_cast<std::size_t>(rng.Below(4))];
      }
      // Naive oracle.
      std::set<std::pair<std::size_t, std::size_t>> expected;
      for (std::size_t p = 0; p < patterns.size(); ++p) {
        for (std::size_t at = text.find(patterns[p]);
             at != std::string::npos; at = text.find(patterns[p], at + 1)) {
          expected.insert({p, at});
        }
      }
      EXPECT_EQ(MatchSet(automaton, text), expected)
          << "text=" << text;
    }
  }
}

}  // namespace
}  // namespace confanon::util
