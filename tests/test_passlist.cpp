#include "passlist/passlist.h"

#include <gtest/gtest.h>

#include <sstream>

namespace confanon::passlist {
namespace {

TEST(PassList, BuiltinContainsCoreKeywords) {
  const PassList list = PassList::Builtin();
  for (const char* keyword :
       {"interface", "ethernet", "serial", "loopback", "router", "bgp",
        "ospf", "rip", "eigrp", "neighbor", "network", "description",
        "hostname", "banner", "motd", "access", "list", "permit", "deny",
        "community", "route", "map", "match", "set", "address", "ip"}) {
    EXPECT_TRUE(list.Contains(keyword)) << keyword;
  }
}

TEST(PassList, BuiltinIsLarge) {
  // The scraped corpus must offer real coverage, not a toy list.
  EXPECT_GE(PassList::Builtin().Size(), 1000u);
}

TEST(PassList, DoesNotContainIdentityBearers) {
  const PassList list = PassList::Builtin();
  for (const char* name : {"uunet", "sprintlink", "foocorp", "globex",
                           "lax", "sfo", "nakatomi"}) {
    EXPECT_FALSE(list.Contains(name)) << name;
  }
}

TEST(PassList, PaperHazardWordsArePassListed) {
  // Section 4.2: "global and crossing are both in the pass-list, but the
  // string 'global crossing' in a comment must be anonymized" — handled by
  // comment stripping, not by the list.
  const PassList list = PassList::Builtin();
  EXPECT_TRUE(list.Contains("global"));
  EXPECT_TRUE(list.Contains("crossing"));
}

TEST(PassList, CaseInsensitive) {
  const PassList list = PassList::Builtin();
  EXPECT_TRUE(list.Contains("Ethernet"));
  EXPECT_TRUE(list.Contains("ETHERNET"));
  PassList custom;
  custom.Add("FooBar");
  EXPECT_TRUE(custom.Contains("foobar"));
  EXPECT_TRUE(custom.Contains("FOOBAR"));
}

TEST(PassList, AddAndMerge) {
  PassList a, b;
  a.Add("alpha");
  b.Add("beta");
  a.Merge(b);
  EXPECT_TRUE(a.Contains("alpha"));
  EXPECT_TRUE(a.Contains("beta"));
  EXPECT_EQ(a.Size(), 2u);
  a.Add("");  // no-op
  EXPECT_EQ(a.Size(), 2u);
}

TEST(PassList, TruncatedIsDeterministicSubset) {
  const PassList full = PassList::Builtin();
  const PassList half = full.Truncated(0.5, 42);
  const PassList again = full.Truncated(0.5, 42);
  EXPECT_EQ(half.Size(), again.Size());
  EXPECT_LT(half.Size(), full.Size());
  EXPECT_GT(half.Size(), full.Size() / 4);
  const PassList none = full.Truncated(0.0, 42);
  EXPECT_EQ(none.Size(), 0u);
  const PassList all = full.Truncated(1.0, 42);
  EXPECT_EQ(all.Size(), full.Size());
}

TEST(DocScraper, ExtractsAlphabeticTokens) {
  PassList list;
  DocScraper scraper(list);
  const std::size_t added = scraper.ScrapeText(
      "Use the neighbor command to configure a BGP peering session.");
  EXPECT_GT(added, 5u);
  EXPECT_TRUE(list.Contains("neighbor"));
  EXPECT_TRUE(list.Contains("peering"));
  EXPECT_TRUE(list.Contains("bgp"));
}

TEST(DocScraper, SkipsSingleLettersAndNumbers) {
  PassList list;
  DocScraper scraper(list);
  scraper.ScrapeText("a 1 22 b3b x");
  EXPECT_FALSE(list.Contains("a"));
  EXPECT_FALSE(list.Contains("x"));
  EXPECT_FALSE(list.Contains("22"));
  // b3b splits into single letters, none added.
  EXPECT_EQ(list.Size(), 0u);
}

TEST(DocScraper, CountsOnlyNewTokens) {
  PassList list;
  DocScraper scraper(list);
  EXPECT_EQ(scraper.ScrapeText("router router ROUTER"), 1u);
  EXPECT_EQ(scraper.ScrapeText("router"), 0u);
}

TEST(DocScraper, ScrapeStream) {
  PassList list;
  DocScraper scraper(list);
  std::istringstream doc("configure terminal\ninterface gigabitethernet");
  EXPECT_GT(scraper.ScrapeStream(doc), 0u);
  EXPECT_TRUE(list.Contains("gigabitethernet"));
}

}  // namespace
}  // namespace confanon::passlist
