// Committed-golden byte identity for the full ingest -> anonymize ->
// egress path. tests/data/golden/ holds three small gen_corpus networks
// (IOS, JunOS, mixed) plus the anonymized output the CLI produced for
// them under salt "golden-salt" before the zero-copy I/O rework. The
// current pipeline must reproduce those bytes exactly at 1 and 4
// threads: any drift in the splitter, the engines, or the renderer shows
// up here as a byte diff, not a statistics change.
#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "config/document.h"
#include "pipeline/pipeline.h"
#include "util/io.h"

namespace confanon {
namespace {

std::filesystem::path GoldenDir(const std::string& leaf) {
  return std::filesystem::path(CONFANON_TEST_DATA_DIR) / "golden" / leaf;
}

/// Loads every .cfg in `dir` (sorted by filename, matching the shell
/// glob order the golden CLI run used) through the zero-copy reader.
std::vector<config::ConfigFile> LoadCorpus(const std::filesystem::path& dir) {
  std::vector<std::filesystem::path> paths;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    paths.push_back(entry.path());
  }
  std::sort(paths.begin(), paths.end());
  std::vector<config::ConfigFile> files;
  files.reserve(paths.size());
  for (const auto& path : paths) {
    std::string error;
    auto contents = util::ReadFileContents(path.string(), &error);
    EXPECT_TRUE(contents.has_value()) << error;
    files.push_back(config::ConfigFile::FromBacking(
        path.filename().string(), contents->view,
        std::move(contents->backing)));
  }
  return files;
}

void CheckGolden(const std::string& mode, int threads) {
  SCOPED_TRACE("mode=" + mode + " threads=" + std::to_string(threads));
  const std::vector<config::ConfigFile> inputs =
      LoadCorpus(GoldenDir("pre-" + mode));
  ASSERT_FALSE(inputs.empty());

  pipeline::PipelineOptions options;
  options.base.salt = "golden-salt";
  options.threads = threads;
  const auto context = pipeline::MakeServiceContext(std::move(options));
  pipeline::CorpusPipeline pipeline(context, context->CreateSession());
  const std::vector<config::ConfigFile> output =
      pipeline.AnonymizeCorpus(inputs);
  ASSERT_EQ(output.size(), inputs.size());

  const std::filesystem::path post = GoldenDir("post-" + mode);
  std::size_t expected_files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(post)) {
    (void)entry;
    ++expected_files;
  }
  ASSERT_EQ(output.size(), expected_files);

  for (const auto& file : output) {
    const std::filesystem::path golden = post / (file.name() + ".cfg");
    std::string error;
    const auto expected = util::ReadFileFully(golden.string(), &error);
    ASSERT_TRUE(expected.has_value())
        << "no golden for output " << file.name() << ": " << error;
    EXPECT_EQ(file.ToText(), *expected)
        << "byte drift vs " << golden.string();
  }
}

TEST(GoldenRoundTrip, IosSequential) { CheckGolden("ios", 1); }
TEST(GoldenRoundTrip, IosParallel) { CheckGolden("ios", 4); }
TEST(GoldenRoundTrip, JunosSequential) { CheckGolden("junos", 1); }
TEST(GoldenRoundTrip, JunosParallel) { CheckGolden("junos", 4); }
TEST(GoldenRoundTrip, MixedSequential) { CheckGolden("mixed", 1); }
TEST(GoldenRoundTrip, MixedParallel) { CheckGolden("mixed", 4); }

}  // namespace
}  // namespace confanon
