#include "util/sha1.h"

#include <gtest/gtest.h>

#include <string>

namespace confanon::util {
namespace {

// RFC 3174 / FIPS 180-1 test vectors.
TEST(Sha1, EmptyString) {
  EXPECT_EQ(Sha1::HexDigest(""), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

TEST(Sha1, Abc) {
  EXPECT_EQ(Sha1::HexDigest("abc"),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1, TwoBlockMessage) {
  EXPECT_EQ(
      Sha1::HexDigest("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
      "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1, MillionAs) {
  Sha1 hasher;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) {
    hasher.Update(chunk);
  }
  EXPECT_EQ(ToHex(hasher.Finalize()),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1, QuickBrownFox) {
  EXPECT_EQ(Sha1::HexDigest("The quick brown fox jumps over the lazy dog"),
            "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12");
}

TEST(Sha1, IncrementalMatchesOneShot) {
  const std::string message =
      "interface Serial1/0.5 point-to-point ip address 1.2.3.4";
  Sha1 incremental;
  for (char c : message) {
    incremental.Update(std::string_view(&c, 1));
  }
  EXPECT_EQ(ToHex(incremental.Finalize()), Sha1::HexDigest(message));
}

TEST(Sha1, SplitAtEveryPositionMatchesOneShot) {
  const std::string message(130, 'x');  // spans three blocks
  const std::string expected = Sha1::HexDigest(message);
  for (std::size_t split = 0; split <= message.size(); split += 7) {
    Sha1 hasher;
    hasher.Update(std::string_view(message).substr(0, split));
    hasher.Update(std::string_view(message).substr(split));
    EXPECT_EQ(ToHex(hasher.Finalize()), expected) << "split=" << split;
  }
}

TEST(Sha1, ResetAllowsReuse) {
  Sha1 hasher;
  hasher.Update("garbage");
  (void)hasher.Finalize();
  hasher.Reset();
  hasher.Update("abc");
  EXPECT_EQ(ToHex(hasher.Finalize()),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1, SaltedDigestDiffersFromUnsalted) {
  EXPECT_NE(ToHex(SaltedDigest("salt", "abc")), Sha1::HexDigest("abc"));
  EXPECT_NE(ToHex(SaltedDigest("salt", "abc")),
            ToHex(SaltedDigest("other", "abc")));
}

TEST(Sha1, SaltedDigestSeparatorPreventsAliasing) {
  // Without a separator, ("ab","c") and ("a","bc") would collide.
  EXPECT_NE(ToHex(SaltedDigest("ab", "c")), ToHex(SaltedDigest("a", "bc")));
}

TEST(Sha1, SaltedHexTokenLength) {
  EXPECT_EQ(SaltedHexToken("s", "word").size(), 10u);
  EXPECT_EQ(SaltedHexToken("s", "word", 40).size(), 40u);
  EXPECT_EQ(SaltedHexToken("s", "word", 100).size(), 40u);  // capped
}

TEST(Sha1, SaltedHexTokenDeterministic) {
  EXPECT_EQ(SaltedHexToken("s", "UUNET-import"),
            SaltedHexToken("s", "UUNET-import"));
  EXPECT_NE(SaltedHexToken("s", "UUNET-import"),
            SaltedHexToken("s", "UUNET-export"));
}

}  // namespace
}  // namespace confanon::util
