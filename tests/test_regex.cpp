#include "regex/regex.h"

#include <gtest/gtest.h>

#include <regex>
#include <string>

#include "util/rng.h"

namespace confanon::regex {
namespace {

TEST(RegexParser, RejectsMalformed) {
  EXPECT_THROW(Regex::Compile("("), ParseError);
  EXPECT_THROW(Regex::Compile(")"), ParseError);
  EXPECT_THROW(Regex::Compile("a("), ParseError);
  EXPECT_THROW(Regex::Compile("["), ParseError);
  EXPECT_THROW(Regex::Compile("[a-"), ParseError);
  EXPECT_THROW(Regex::Compile("[z-a]"), ParseError);
  EXPECT_THROW(Regex::Compile("*a"), ParseError);
  EXPECT_THROW(Regex::Compile("+"), ParseError);
  EXPECT_THROW(Regex::Compile("a{"), ParseError);
  EXPECT_THROW(Regex::Compile("a{2"), ParseError);
  EXPECT_THROW(Regex::Compile("a{x}"), ParseError);
  EXPECT_THROW(Regex::Compile("a{3,2}"), ParseError);
  EXPECT_THROW(Regex::Compile("a\\"), ParseError);
}

TEST(RegexParser, ErrorCarriesOffset) {
  try {
    Regex::Compile("abc[");
    FAIL() << "expected ParseError";
  } catch (const ParseError& error) {
    EXPECT_EQ(error.offset(), 3u);
  }
}

TEST(RegexSearch, LiteralSubstring) {
  const Regex re = Regex::Compile("701");
  EXPECT_TRUE(re.Search("701"));
  EXPECT_TRUE(re.Search("1701"));       // substring semantics
  EXPECT_TRUE(re.Search("701 1239"));
  EXPECT_FALSE(re.Search("70 1"));
  EXPECT_FALSE(re.Search(""));
}

TEST(RegexSearch, Anchors) {
  EXPECT_TRUE(SearchOnce("^701", "701 1239"));
  EXPECT_FALSE(SearchOnce("^701", "1239 701"));
  EXPECT_TRUE(SearchOnce("701$", "1239 701"));
  EXPECT_FALSE(SearchOnce("701$", "701 1239"));
  EXPECT_TRUE(SearchOnce("^$", ""));
  EXPECT_FALSE(SearchOnce("^$", "x"));
  EXPECT_TRUE(SearchOnce("^701$", "701"));
  EXPECT_FALSE(SearchOnce("^701$", "7011"));
}

TEST(RegexSearch, CiscoUnderscoreMatchesDelimitersAndBoundaries) {
  const Regex re = Regex::Compile("_701_");
  EXPECT_TRUE(re.Search("701"));            // both boundaries
  EXPECT_TRUE(re.Search("701 1239"));       // boundary + space
  EXPECT_TRUE(re.Search("1239 701"));
  EXPECT_TRUE(re.Search("13 701 1239"));
  EXPECT_TRUE(re.Search("{701}"));
  EXPECT_TRUE(re.Search("(701)"));
  EXPECT_TRUE(re.Search("13,701,9"));
  EXPECT_FALSE(re.Search("1701"));          // digit is not a delimiter
  EXPECT_FALSE(re.Search("7011"));
}

TEST(RegexSearch, UnderscoreLiteralWhenCiscoModeOff) {
  Regex::Options options;
  options.cisco_underscore = false;
  const Regex re = Regex::Compile("a_b", options);
  EXPECT_TRUE(re.Search("xa_by"));
  EXPECT_FALSE(re.Search("a b"));
}

TEST(RegexSearch, DotDoesNotMatchBoundaries) {
  // "70." requires a real character after 70.
  const Regex re = Regex::Compile("70.");
  EXPECT_TRUE(re.Search("701"));
  EXPECT_TRUE(re.Search("70x"));
  EXPECT_FALSE(re.Search("70"));
}

TEST(RegexSearch, NegatedClassExcludesBoundaries) {
  const Regex re = Regex::Compile("70[^0-9]");
  EXPECT_TRUE(re.Search("70 x"));
  EXPECT_FALSE(re.Search("70"));  // boundary must not satisfy [^0-9]
  EXPECT_FALSE(re.Search("701"));
}

TEST(RegexSearch, ClassesAndRanges) {
  EXPECT_TRUE(SearchOnce("70[1-3]", "702"));
  EXPECT_FALSE(SearchOnce("70[1-3]", "704"));
  EXPECT_TRUE(SearchOnce("[abc]x", "bx"));
  EXPECT_TRUE(SearchOnce("[]a]", "]"));   // ']' first is literal
  EXPECT_TRUE(SearchOnce("[a-]", "-"));   // trailing '-' is literal
  EXPECT_TRUE(SearchOnce("[\\]]", "]"));
}

TEST(RegexSearch, Quantifiers) {
  EXPECT_TRUE(SearchOnce("^a*$", ""));
  EXPECT_TRUE(SearchOnce("^a*$", "aaaa"));
  EXPECT_FALSE(SearchOnce("^a+$", ""));
  EXPECT_TRUE(SearchOnce("^a+$", "aa"));
  EXPECT_TRUE(SearchOnce("^ab?$", "a"));
  EXPECT_TRUE(SearchOnce("^ab?$", "ab"));
  EXPECT_FALSE(SearchOnce("^ab?$", "abb"));
}

TEST(RegexSearch, BoundedRepeats) {
  EXPECT_TRUE(SearchOnce("^a{3}$", "aaa"));
  EXPECT_FALSE(SearchOnce("^a{3}$", "aa"));
  EXPECT_FALSE(SearchOnce("^a{3}$", "aaaa"));
  EXPECT_TRUE(SearchOnce("^a{2,4}$", "aa"));
  EXPECT_TRUE(SearchOnce("^a{2,4}$", "aaaa"));
  EXPECT_FALSE(SearchOnce("^a{2,4}$", "aaaaa"));
  EXPECT_TRUE(SearchOnce("^a{2,}$", "aaaaaaa"));
  EXPECT_FALSE(SearchOnce("^a{2,}$", "a"));
  EXPECT_TRUE(SearchOnce("^(ab){2}$", "abab"));
  EXPECT_TRUE(SearchOnce("^a{0,1}$", ""));
}

TEST(RegexSearch, AlternationAndGrouping) {
  EXPECT_TRUE(SearchOnce("^(701|1239)$", "701"));
  EXPECT_TRUE(SearchOnce("^(701|1239)$", "1239"));
  EXPECT_FALSE(SearchOnce("^(701|1239)$", "7011239"));
  EXPECT_TRUE(SearchOnce("(_1239_|_70[2-5]_)", "13 703 9"));
  EXPECT_TRUE(SearchOnce("^(a|b)*$", "abba"));
}

TEST(RegexSearch, EscapedMetacharacters) {
  EXPECT_TRUE(SearchOnce("\\.", "a.b"));
  EXPECT_FALSE(SearchOnce("\\.", "ab"));
  EXPECT_TRUE(SearchOnce("\\*", "a*b"));
  EXPECT_TRUE(SearchOnce("\\(\\)", "()"));
  EXPECT_TRUE(SearchOnce("\\$", "price$"));
}

TEST(RegexSearch, EmptyPatternMatchesEverything) {
  EXPECT_TRUE(SearchOnce("", ""));
  EXPECT_TRUE(SearchOnce("", "anything"));
  EXPECT_TRUE(SearchOnce("()", "x"));
  EXPECT_TRUE(SearchOnce("a|", "zzz"));  // empty right branch
}

TEST(RegexSearch, NfaAndDfaAgree) {
  // The Regex facade matches with the DFA; re-run the same framed subject
  // through the NFA and demand agreement.
  const std::vector<std::string> patterns = {
      "70[1-5]",  "^1239$",  "_70._",       "(a|bc)*d",
      "x{2,3}y?", "[^0-9]+", "1{1,4}(2|3)", ".*",
  };
  const std::vector<std::string> subjects = {
      "",     "701",    "1239",     "70 5",  "abcd",
      "xxy",  "99",     "12223",    "a1b",   "1701 1239",
  };
  for (const auto& pattern : patterns) {
    const Regex re = Regex::Compile(pattern);
    for (const auto& subject : subjects) {
      const std::string framed = FrameSubject(subject);
      EXPECT_EQ(re.nfa().FullMatch(framed), re.dfa().FullMatch(framed))
          << pattern << " on " << subject;
    }
  }
}

// ---------------------------------------------------------------------
// Differential test against std::regex (POSIX extended) on the shared
// dialect subset. Patterns are built from an AST so they are always valid.
// ---------------------------------------------------------------------

std::string RandomPattern(util::Rng& rng, int depth) {
  const auto literal = [&]() {
    static const char kAlphabet[] = "ab01";
    return std::string(
        1, kAlphabet[static_cast<std::size_t>(rng.Below(4))]);
  };
  if (depth <= 0) {
    switch (rng.Below(3)) {
      case 0:
        return literal();
      case 1:
        return std::string("[ab0]");
      default:
        return std::string(".");
    }
  }
  switch (rng.Below(6)) {
    case 0:
      return RandomPattern(rng, depth - 1) + RandomPattern(rng, depth - 1);
    case 1:
      return "(" + RandomPattern(rng, depth - 1) + "|" +
             RandomPattern(rng, depth - 1) + ")";
    case 2:
      return "(" + RandomPattern(rng, depth - 1) + ")*";
    case 3:
      return "(" + RandomPattern(rng, depth - 1) + ")?";
    case 4:
      return "(" + RandomPattern(rng, depth - 1) + "){1,2}";
    default:
      return literal();
  }
}

std::string RandomSubject(util::Rng& rng) {
  static const char kAlphabet[] = "ab01";
  std::string subject;
  const int length = static_cast<int>(rng.Below(7));
  for (int i = 0; i < length; ++i) {
    subject += kAlphabet[static_cast<std::size_t>(rng.Below(4))];
  }
  return subject;
}

class RegexOracle : public ::testing::TestWithParam<int> {};

TEST_P(RegexOracle, AgreesWithStdRegexExtended) {
  util::Rng rng(1000 + GetParam());
  for (int trial = 0; trial < 40; ++trial) {
    const std::string pattern = RandomPattern(rng, 3);
    const Regex ours = Regex::Compile(pattern);
    const std::regex theirs(pattern, std::regex_constants::extended);
    for (int s = 0; s < 25; ++s) {
      const std::string subject = RandomSubject(rng);
      EXPECT_EQ(ours.Search(subject), std::regex_search(subject, theirs))
          << "pattern=" << pattern << " subject=" << subject;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RegexOracle, ::testing::Range(0, 8));

}  // namespace
}  // namespace confanon::regex
