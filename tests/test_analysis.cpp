#include <gtest/gtest.h>

#include "analysis/characteristics.h"
#include "analysis/compartment.h"
#include "analysis/design_extract.h"
#include "analysis/fingerprint.h"

namespace confanon::analysis {
namespace {

config::ConfigFile File(std::string name, std::string_view text) {
  return config::ConfigFile::FromText(std::move(name), text);
}

const char* kRouter1 = R"(hostname r1
interface Loopback0
 ip address 10.0.255.1 255.255.255.255
interface Serial0/0
 ip address 10.0.0.1 255.255.255.252
interface Ethernet0
 ip address 10.1.0.1 255.255.255.0
router ospf 1
 network 10.0.0.0 0.0.255.255 area 0
router rip
 network 10.0.0.0
router bgp 2001
 redistribute rip
 neighbor 10.0.255.2 remote-as 2001
 neighbor 10.0.0.2 remote-as 701
 neighbor 10.0.0.2 route-map PEER-in in
 neighbor 10.0.0.2 route-map PEER-out out
route-map PEER-in deny 10
 match as-path 50
route-map PEER-in permit 20
 match community 100
route-map PEER-out permit 10
 match ip address 143
)";

const char* kRouter2 = R"(hostname r2
interface Loopback0
 ip address 10.0.255.2 255.255.255.255
interface Serial1/0
 ip address 10.0.0.2 255.255.255.252
router ospf 1
 network 10.0.0.0 0.0.255.255 area 0
router bgp 2001
 neighbor 10.0.255.1 remote-as 2001
)";

std::vector<config::ConfigFile> TwoRouterNetwork() {
  return {File("r1", kRouter1), File("r2", kRouter2)};
}

// --- characteristics ---

TEST(Characteristics, CountsFromKnownConfig) {
  const NetworkCharacteristics stats =
      ExtractCharacteristics(TwoRouterNetwork());
  EXPECT_EQ(stats.router_count, 2u);
  EXPECT_EQ(stats.interface_count, 5u);
  EXPECT_EQ(stats.bgp_speaker_count, 2u);
  EXPECT_EQ(stats.ebgp_session_count, 1u);
  EXPECT_EQ(stats.route_map_clause_count, 3u);
  EXPECT_EQ(stats.protocol_counts.at("ospf"), 2u);
  EXPECT_EQ(stats.protocol_counts.at("rip"), 1u);
  EXPECT_EQ(stats.protocol_counts.at("bgp"), 2u);
}

TEST(Characteristics, SubnetHistogram) {
  const NetworkCharacteristics stats =
      ExtractCharacteristics(TwoRouterNetwork());
  // Distinct subnets: two /32 loopbacks, one shared /30, one /24.
  EXPECT_EQ(stats.subnet_sizes.Get(32), 2u);
  EXPECT_EQ(stats.subnet_sizes.Get(30), 1u);
  EXPECT_EQ(stats.subnet_sizes.Get(24), 1u);
}

TEST(Characteristics, DiffReportsMismatches) {
  NetworkCharacteristics a = ExtractCharacteristics(TwoRouterNetwork());
  NetworkCharacteristics b = a;
  EXPECT_TRUE(a.DiffAgainst(b).empty());
  b.interface_count += 1;
  const auto diffs = a.DiffAgainst(b);
  ASSERT_EQ(diffs.size(), 1u);
  EXPECT_NE(diffs[0].find("interface_count"), std::string::npos);
}

// --- design extraction ---

TEST(DesignExtract, RecoverLinksFromSharedSubnets) {
  const NetworkDesign design = ExtractDesign(TwoRouterNetwork());
  ASSERT_EQ(design.links.size(), 1u);
  EXPECT_EQ(design.links[0].router_a, "r1");
  EXPECT_EQ(design.links[0].interface_a, "Serial0/0");
  EXPECT_EQ(design.links[0].router_b, "r2");
  EXPECT_EQ(design.links[0].interface_b, "Serial1/0");
  EXPECT_EQ(design.links[0].subnet.ToString(), "10.0.0.0/30");
}

TEST(DesignExtract, SubnetContainsCoverage) {
  const NetworkDesign design = ExtractDesign(TwoRouterNetwork());
  const RouterDesign& r1 = design.routers[0];
  ASSERT_EQ(r1.hostname, "r1");
  ASSERT_EQ(r1.processes.size(), 2u);
  // OSPF network 10.0.0.0/16 covers loopback + serial but not ethernet
  // (10.1.0.1).
  EXPECT_EQ(r1.processes[0].protocol, "ospf");
  EXPECT_EQ(r1.processes[0].covered_interfaces,
            (std::vector<std::string>{"Loopback0", "Serial0/0"}));
  // RIP classful 10/8 covers everything.
  EXPECT_EQ(r1.processes[1].protocol, "rip");
  EXPECT_EQ(r1.processes[1].covered_interfaces.size(), 3u);
}

TEST(DesignExtract, BgpNeighborsAndPolicy) {
  const NetworkDesign design = ExtractDesign(TwoRouterNetwork());
  const RouterDesign& r1 = design.routers[0];
  ASSERT_TRUE(r1.bgp_asn.has_value());
  EXPECT_EQ(*r1.bgp_asn, 2001u);
  ASSERT_EQ(r1.bgp_neighbors.size(), 2u);
  // Sorted by peer address: 10.0.0.2 (eBGP) then 10.0.255.2 (iBGP).
  EXPECT_TRUE(r1.bgp_neighbors[0].external);
  EXPECT_EQ(r1.bgp_neighbors[0].remote_asn, 701u);
  EXPECT_EQ(r1.bgp_neighbors[0].import_map, "PEER-in");
  EXPECT_EQ(r1.bgp_neighbors[0].export_map, "PEER-out");
  EXPECT_FALSE(r1.bgp_neighbors[1].external);
  EXPECT_TRUE(r1.redistributions.contains({"bgp", "rip"}));
}

TEST(DesignExtract, RouteMapClauses) {
  const NetworkDesign design = ExtractDesign(TwoRouterNetwork());
  const RouterDesign& r1 = design.routers[0];
  const auto& in_clauses = r1.route_maps.at("PEER-in");
  ASSERT_EQ(in_clauses.size(), 2u);
  EXPECT_FALSE(in_clauses[0].permit);
  EXPECT_EQ(in_clauses[0].sequence, 10);
  EXPECT_EQ(in_clauses[0].references,
            (std::vector<std::pair<std::string, std::string>>{
                {"as-path", "50"}}));
  EXPECT_EQ(in_clauses[1].references,
            (std::vector<std::pair<std::string, std::string>>{
                {"community", "100"}}));
  const auto& out_clauses = r1.route_maps.at("PEER-out");
  EXPECT_EQ(out_clauses[0].references,
            (std::vector<std::pair<std::string, std::string>>{
                {"acl", "143"}}));
}

TEST(DesignExtract, MapDesignIdentityIsNoop) {
  const NetworkDesign design = ExtractDesign(TwoRouterNetwork());
  const NetworkDesign mapped = MapDesign(
      design, [](const std::string& s) { return s; },
      [](net::Ipv4Address a) { return a; },
      [](std::uint32_t a) { return a; });
  EXPECT_TRUE(CompareDesigns(design, mapped).empty());
}

TEST(DesignExtract, MapDesignReordersAfterRenaming) {
  const NetworkDesign design = ExtractDesign(TwoRouterNetwork());
  // A renaming that swaps sort order: r1 -> z9, r2 -> a0.
  const auto name_map = [](const std::string& s) -> std::string {
    if (s == "r1") return "z9";
    if (s == "r2") return "a0";
    return s;
  };
  const NetworkDesign mapped = MapDesign(
      design, name_map, [](net::Ipv4Address a) { return a; },
      [](std::uint32_t a) { return a; });
  EXPECT_EQ(mapped.routers[0].hostname, "a0");
  EXPECT_EQ(mapped.routers[1].hostname, "z9");
  EXPECT_EQ(mapped.links[0].router_a, "a0");
  EXPECT_EQ(mapped.links[0].interface_a, "Serial1/0");
}

TEST(DesignExtract, CompareDetectsDifferences) {
  NetworkDesign a = ExtractDesign(TwoRouterNetwork());
  NetworkDesign b = a;
  b.routers[0].bgp_neighbors[0].remote_asn = 999;
  const auto diffs = CompareDesigns(a, b);
  ASSERT_FALSE(diffs.empty());
  EXPECT_NE(diffs[0].find("bgp_neighbors"), std::string::npos);
}

TEST(DesignExtract, StructuralComparisonIgnoresIdentity) {
  const NetworkDesign a = ExtractDesign(TwoRouterNetwork());
  const NetworkDesign renamed = MapDesign(
      a, [](const std::string& s) { return "x-" + s; },
      [](net::Ipv4Address addr) { return addr; },
      [](std::uint32_t asn) { return asn; });
  EXPECT_TRUE(CompareStructural(a, renamed).empty());
  NetworkDesign mutated = a;
  mutated.links.clear();
  EXPECT_FALSE(CompareStructural(a, mutated).empty());
}

// --- fingerprints ---

TEST(Fingerprint, SubnetHistogramMatchesCharacteristics) {
  const auto configs = TwoRouterNetwork();
  EXPECT_TRUE(SubnetSizeFingerprint(configs) ==
              ExtractCharacteristics(configs).subnet_sizes);
}

TEST(Fingerprint, PeeringStructure) {
  const PeeringFingerprint fp =
      PeeringStructureFingerprint(TwoRouterNetwork());
  EXPECT_EQ(fp.peering_router_count, 1u);
  EXPECT_EQ(fp.sessions_per_router, (std::vector<int>{1}));
}

TEST(Fingerprint, UniquenessCounting) {
  util::Histogram a, b, c;
  a.Add(30, 5);
  b.Add(30, 5);  // identical to a
  c.Add(24, 2);
  const UniquenessResult result = SubnetFingerprintUniqueness({a, b, c});
  EXPECT_EQ(result.population, 3u);
  EXPECT_EQ(result.uniquely_identified, 1u);  // only c
  EXPECT_EQ(result.ambiguous, 2u);
  EXPECT_NEAR(result.IdentifiedFraction(), 1.0 / 3, 1e-9);
}

TEST(Fingerprint, PeeringUniquenessCounting) {
  PeeringFingerprint a{2, {3, 1}};
  PeeringFingerprint b{2, {3, 1}};
  PeeringFingerprint c{1, {4}};
  const UniquenessResult result = PeeringFingerprintUniqueness({a, b, c});
  EXPECT_EQ(result.uniquely_identified, 1u);
}

// --- compartmentalization ---

TEST(Compartment, DetectsNat) {
  const auto configs = std::vector<config::ConfigFile>{File(
      "r", "ip nat pool p 10.0.0.1 10.0.0.14 netmask 255.255.255.240\n")};
  EXPECT_EQ(DetectCompartmentalization(configs), CompartmentMechanism::kNat);
}

TEST(Compartment, DetectsPolicy) {
  const auto configs = std::vector<config::ConfigFile>{
      File("r", "router ospf 1\n distribute-list 120 in\n")};
  EXPECT_EQ(DetectCompartmentalization(configs),
            CompartmentMechanism::kRoutingPolicy);
}

TEST(Compartment, DetectsProbeDrop) {
  const auto configs = std::vector<config::ConfigFile>{
      File("r", "access-list 199 deny icmp any any echo\n")};
  EXPECT_EQ(DetectCompartmentalization(configs),
            CompartmentMechanism::kProbeDrop);
}

TEST(Compartment, NoneWhenClean) {
  EXPECT_EQ(DetectCompartmentalization(TwoRouterNetwork()),
            CompartmentMechanism::kNone);
}

}  // namespace
}  // namespace confanon::analysis
