#include "analysis/reachability.h"

#include <gtest/gtest.h>

#include "analysis/validate.h"
#include "core/anonymizer.h"
#include "gen/config_writer.h"
#include "gen/network_gen.h"

namespace confanon::analysis {
namespace {

config::ConfigFile File(std::string name, std::string_view text) {
  return config::ConfigFile::FromText(std::move(name), text);
}

// Chain a --- b --- c; each router owns one LAN.
std::vector<config::ConfigFile> Chain(bool filter_on_c) {
  std::vector<config::ConfigFile> configs;
  configs.push_back(File("a", R"(hostname a
interface Serial0
 ip address 10.0.0.1 255.255.255.252
interface Ethernet0
 ip address 10.10.1.1 255.255.255.0
router ospf 1
 network 10.0.0.0 0.255.255.255 area 0
)"));
  configs.push_back(File("b", R"(hostname b
interface Serial0
 ip address 10.0.0.2 255.255.255.252
interface Serial1
 ip address 10.0.0.5 255.255.255.252
interface Ethernet0
 ip address 10.10.2.1 255.255.255.0
router ospf 1
 network 10.0.0.0 0.255.255.255 area 0
)"));
  std::string c = R"(hostname c
interface Serial0
 ip address 10.0.0.6 255.255.255.252
interface Ethernet0
 ip address 10.10.3.1 255.255.255.0
router ospf 1
 network 10.0.0.0 0.255.255.255 area 0
)";
  if (filter_on_c) {
    c += " distribute-list 7 in\n"
         "access-list 7 deny ip 10.10.1.0 0.0.0.255\n"
         "access-list 7 permit ip 0.0.0.0 255.255.255.255\n";
  }
  configs.push_back(File("c", c));
  return configs;
}

TEST(Reachability, FullMeshWithoutFilters) {
  const auto design = ExtractDesign(Chain(false));
  const ReachabilityReport report = AnalyzeReachability(design);
  EXPECT_EQ(report.routers, 3u);
  EXPECT_EQ(report.igp_components, 1u);
  // Destinations: a{link1, lan1}, b{link1, link2, lan2}, c{link2, lan3}
  // = 7; each of 3 routers reaches the other owners' destinations.
  EXPECT_EQ(report.destinations, 7u);
  EXPECT_EQ(report.pairs, 14u);
  EXPECT_EQ(report.reachable_pairs, 14u);
  EXPECT_EQ(report.filtered_pairs, 0u);
  EXPECT_DOUBLE_EQ(report.ReachableFraction(), 1.0);
}

TEST(Reachability, DistributeListBlocksFilteredDestination) {
  const auto design = ExtractDesign(Chain(true));
  const ReachabilityReport report = AnalyzeReachability(design);
  EXPECT_EQ(report.igp_components, 1u);
  // c can no longer learn a route to a's LAN 10.10.1.0/24.
  EXPECT_EQ(report.filtered_pairs, 1u);
  EXPECT_EQ(report.reachable_pairs, 13u);
  EXPECT_LT(report.ReachableFraction(), 1.0);
}

TEST(Reachability, PartitionWhenIgpDoesNotCoverLink) {
  // b's OSPF covers nothing (network statement outside the link), so the
  // graph splits into components.
  auto configs = Chain(false);
  configs[1] = File("b", R"(hostname b
interface Serial0
 ip address 10.0.0.2 255.255.255.252
interface Serial1
 ip address 10.0.0.5 255.255.255.252
router ospf 1
 network 192.168.0.0 0.0.255.255 area 0
)");
  const auto design = ExtractDesign(configs);
  const ReachabilityReport report = AnalyzeReachability(design);
  EXPECT_EQ(report.igp_components, 3u);
  EXPECT_EQ(report.reachable_pairs, 0u);
}

TEST(Reachability, EmptyDesign) {
  const ReachabilityReport report = AnalyzeReachability(NetworkDesign{});
  EXPECT_EQ(report.pairs, 0u);
  EXPECT_DOUBLE_EQ(report.ReachableFraction(), 1.0);
}

TEST(Reachability, MatrixPreservedThroughAnonymization) {
  // The whole reachability report must be identical pre/post, for both a
  // filtered and an unfiltered corpus (counts are identity-free).
  for (bool filtered : {false, true}) {
    const auto pre = Chain(filtered);
    core::AnonymizerOptions options;
    options.salt = "reach-salt";
    core::Anonymizer anonymizer(std::move(options));
    const auto post = anonymizer.AnonymizeNetwork(pre);
    EXPECT_TRUE(AnalyzeReachability(ExtractDesign(pre)) ==
                AnalyzeReachability(ExtractDesign(post)))
        << "filtered=" << filtered;
  }
}

TEST(Reachability, PolicyCompartmentalizedNetworksRestrictReachability) {
  // Find generated networks with policy compartmentalization and verify
  // the paper's claim: routing policy prevents some reachability, and the
  // restriction survives anonymization.
  int found = 0;
  for (std::uint64_t seed = 1; seed < 200 && found < 3; ++seed) {
    gen::GeneratorParams params;
    params.seed = seed;
    params.router_count = 16;
    params.p_compartmentalized = 1.0;
    const auto network = gen::GenerateNetwork(params, 0);
    if (network.truth.compartmentalization !=
        gen::Compartmentalization::kPolicy) {
      continue;
    }
    const auto pre = gen::WriteNetworkConfigs(network);
    const ReachabilityReport pre_report =
        AnalyzeReachability(ExtractDesign(pre));
    if (pre_report.filtered_pairs == 0) continue;  // deny hit own subnet
    ++found;
    EXPECT_LT(pre_report.ReachableFraction(), 1.0);

    core::AnonymizerOptions options;
    options.salt = "reach-" + std::to_string(seed);
    core::Anonymizer anonymizer(std::move(options));
    const auto post = anonymizer.AnonymizeNetwork(pre);
    EXPECT_TRUE(pre_report == AnalyzeReachability(ExtractDesign(post)));
  }
  EXPECT_GE(found, 1);
}

}  // namespace
}  // namespace confanon::analysis
