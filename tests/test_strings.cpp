#include "util/strings.h"

#include <gtest/gtest.h>

namespace confanon::util {
namespace {

TEST(Strings, AsciiClassifiersIgnoreLocaleErrors) {
  EXPECT_TRUE(IsAsciiAlpha('a'));
  EXPECT_TRUE(IsAsciiAlpha('Z'));
  EXPECT_FALSE(IsAsciiAlpha('0'));
  EXPECT_FALSE(IsAsciiAlpha('-'));
  EXPECT_FALSE(IsAsciiAlpha('\xE9'));  // non-ASCII byte
  EXPECT_TRUE(IsAsciiDigit('7'));
  EXPECT_FALSE(IsAsciiDigit('a'));
  EXPECT_TRUE(IsAsciiAlnum('q'));
  EXPECT_TRUE(IsAsciiAlnum('3'));
  EXPECT_FALSE(IsAsciiAlnum('.'));
}

TEST(Strings, ToLower) {
  EXPECT_EQ(ToLower("Ethernet0/0"), "ethernet0/0");
  EXPECT_EQ(ToLower("UUNET-import"), "uunet-import");
  EXPECT_EQ(ToLower(""), "");
}

TEST(Strings, TrimRemovesBlanksAndCr) {
  EXPECT_EQ(Trim("  hello  "), "hello");
  EXPECT_EQ(Trim("\thello\r"), "hello");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("a b"), "a b");
}

TEST(Strings, SplitWordsSkipsRuns) {
  const auto words = SplitWords("  ip  address\t1.2.3.4   ");
  ASSERT_EQ(words.size(), 3u);
  EXPECT_EQ(words[0], "ip");
  EXPECT_EQ(words[1], "address");
  EXPECT_EQ(words[2], "1.2.3.4");
}

TEST(Strings, SplitWordsEmpty) {
  EXPECT_TRUE(SplitWords("").empty());
  EXPECT_TRUE(SplitWords("   \t ").empty());
}

TEST(Strings, SplitPreservesEmptyFields) {
  const auto fields = Split("a::b:", ':');
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "");
  EXPECT_EQ(fields[2], "b");
  EXPECT_EQ(fields[3], "");
}

TEST(Strings, JoinRoundTrip) {
  const std::vector<std::string> pieces = {"a", "b", "c"};
  EXPECT_EQ(Join(pieces, "|"), "a|b|c");
  EXPECT_EQ(Join(std::vector<std::string>{}, "|"), "");
  EXPECT_EQ(Join(std::vector<std::string>{"one"}, ", "), "one");
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("route-map", "route"));
  EXPECT_FALSE(StartsWith("route", "route-map"));
  EXPECT_TRUE(EndsWith("UUNET-import", "-import"));
  EXPECT_FALSE(EndsWith("import", "UUNET-import"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_TRUE(EndsWith("x", ""));
}

TEST(Strings, IsAllDigits) {
  EXPECT_TRUE(IsAllDigits("0"));
  EXPECT_TRUE(IsAllDigits("65535"));
  EXPECT_TRUE(IsAllDigits("007"));
  EXPECT_FALSE(IsAllDigits(""));
  EXPECT_FALSE(IsAllDigits("12a"));
  EXPECT_FALSE(IsAllDigits("-1"));
  EXPECT_FALSE(IsAllDigits("1.2"));
}

TEST(Strings, ParseUintBasics) {
  std::uint64_t out = 0;
  EXPECT_TRUE(ParseUint("701", 65535, out));
  EXPECT_EQ(out, 701u);
  EXPECT_TRUE(ParseUint("0", 65535, out));
  EXPECT_EQ(out, 0u);
  EXPECT_TRUE(ParseUint("65535", 65535, out));
  EXPECT_EQ(out, 65535u);
}

TEST(Strings, ParseUintRejectsOverflowAndJunk) {
  std::uint64_t out = 0;
  EXPECT_FALSE(ParseUint("65536", 65535, out));
  EXPECT_FALSE(ParseUint("999999999999999999999", ~0ull, out));
  EXPECT_FALSE(ParseUint("", 100, out));
  EXPECT_FALSE(ParseUint("12 ", 100, out));
  EXPECT_FALSE(ParseUint("0x10", 100, out));
}

TEST(Strings, ParseUintTinyMax) {
  std::uint64_t out = 0;
  EXPECT_TRUE(ParseUint("5", 5, out));
  EXPECT_FALSE(ParseUint("6", 5, out));
  EXPECT_FALSE(ParseUint("9", 3, out));
}

TEST(Strings, ParseUintLeadingZeros) {
  std::uint64_t out = 0;
  EXPECT_TRUE(ParseUint("0000701", 65535, out));
  EXPECT_EQ(out, 701u);
}

}  // namespace
}  // namespace confanon::util
