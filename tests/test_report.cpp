#include "core/report.h"

#include <gtest/gtest.h>

namespace confanon::core {
namespace {

TEST(Report, CountRuleAccumulates) {
  AnonymizationReport report;
  report.CountRule("A1.router-bgp");
  report.CountRule("A1.router-bgp", 4);
  EXPECT_EQ(report.rule_fires.at("A1.router-bgp"), 5u);
}

TEST(Report, CommentWordFraction) {
  AnonymizationReport report;
  EXPECT_DOUBLE_EQ(report.CommentWordFraction(), 0.0);  // no words
  report.total_words = 200;
  report.comment_words_removed = 3;
  EXPECT_DOUBLE_EQ(report.CommentWordFraction(), 0.015);
}

TEST(Report, MergeAddsEverything) {
  AnonymizationReport a, b;
  a.total_lines = 10;
  a.words_hashed = 2;
  a.asns_mapped = 1;
  a.CountRule("T2.passlist-hash", 2);
  b.total_lines = 5;
  b.words_hashed = 3;
  b.addresses_mapped = 7;
  b.CountRule("T2.passlist-hash");
  b.CountRule("I1.map-addresses", 7);
  a.Merge(b);
  EXPECT_EQ(a.total_lines, 15u);
  EXPECT_EQ(a.words_hashed, 5u);
  EXPECT_EQ(a.asns_mapped, 1u);
  EXPECT_EQ(a.addresses_mapped, 7u);
  EXPECT_EQ(a.rule_fires.at("T2.passlist-hash"), 3u);
  EXPECT_EQ(a.rule_fires.at("I1.map-addresses"), 7u);
}

TEST(Report, ToStringMentionsKeyFields) {
  AnonymizationReport report;
  report.total_lines = 42;
  report.words_hashed = 7;
  report.CountRule("A6.as-path-regex");
  const std::string text = report.ToString();
  EXPECT_NE(text.find("lines=42"), std::string::npos);
  EXPECT_NE(text.find("words_hashed=7"), std::string::npos);
  EXPECT_NE(text.find("A6.as-path-regex"), std::string::npos);
}

AnonymizationReport FullReport() {
  AnonymizationReport report;
  report.total_lines = 1;
  report.total_words = 2;
  report.comment_words_removed = 3;
  report.words_hashed = 4;
  report.words_passed = 5;
  report.addresses_mapped = 6;
  report.addresses_special = 7;
  report.asns_mapped = 8;
  report.communities_mapped = 9;
  report.aspath_regexps_rewritten = 10;
  report.community_regexps_rewritten = 11;
  report.CountRule("A1.router-bgp", 12);
  return report;
}

TEST(Report, MergeCoversEveryScalarField) {
  AnonymizationReport a = FullReport();
  a.Merge(FullReport());
  EXPECT_EQ(a.total_lines, 2u);
  EXPECT_EQ(a.total_words, 4u);
  EXPECT_EQ(a.comment_words_removed, 6u);
  EXPECT_EQ(a.words_hashed, 8u);
  EXPECT_EQ(a.words_passed, 10u);
  EXPECT_EQ(a.addresses_mapped, 12u);
  EXPECT_EQ(a.addresses_special, 14u);
  EXPECT_EQ(a.asns_mapped, 16u);
  EXPECT_EQ(a.communities_mapped, 18u);
  EXPECT_EQ(a.aspath_regexps_rewritten, 20u);
  EXPECT_EQ(a.community_regexps_rewritten, 22u);
  EXPECT_EQ(a.rule_fires.at("A1.router-bgp"), 24u);
}

TEST(Report, MergeUnionsDisjointRuleMaps) {
  AnonymizationReport a, b;
  a.CountRule("C1.strip-comments", 2);
  b.CountRule("I1.map-addresses", 5);
  a.Merge(b);
  EXPECT_EQ(a.rule_fires.size(), 2u);
  EXPECT_EQ(a.rule_fires.at("C1.strip-comments"), 2u);
  EXPECT_EQ(a.rule_fires.at("I1.map-addresses"), 5u);
}

TEST(Report, MergeWithEmptyIsIdentity) {
  AnonymizationReport a = FullReport();
  a.Merge(AnonymizationReport{});
  const AnonymizationReport reference = FullReport();
  EXPECT_EQ(a.total_lines, reference.total_lines);
  EXPECT_EQ(a.total_words, reference.total_words);
  EXPECT_EQ(a.community_regexps_rewritten,
            reference.community_regexps_rewritten);
  EXPECT_EQ(a.rule_fires, reference.rule_fires);

  AnonymizationReport empty;
  empty.Merge(FullReport());
  EXPECT_EQ(empty.words_passed, reference.words_passed);
  EXPECT_EQ(empty.rule_fires, reference.rule_fires);
}

TEST(Report, SelfMergeDoubles) {
  AnonymizationReport a = FullReport();
  a.Merge(a);
  EXPECT_EQ(a.total_lines, 2u);
  EXPECT_EQ(a.community_regexps_rewritten, 22u);
  EXPECT_EQ(a.rule_fires.at("A1.router-bgp"), 24u);
}

TEST(Report, ToStringFormatsFractionWithTwoDecimals) {
  AnonymizationReport report;
  report.total_words = 300;
  report.comment_words_removed = 100;  // 33.333...%
  EXPECT_NE(report.ToString().find("(33.33%)"), std::string::npos);
}

TEST(Report, ToStringHandlesZeroWords) {
  const std::string text = AnonymizationReport{}.ToString();
  EXPECT_NE(text.find("(n/a)"), std::string::npos);
  EXPECT_EQ(text.find("nan"), std::string::npos);
}

TEST(Report, ToJsonCarriesFieldsAndRules) {
  AnonymizationReport report = FullReport();
  const std::string json = report.ToJson();
  EXPECT_NE(json.find("\"total_lines\":1"), std::string::npos);
  EXPECT_NE(json.find("\"community_regexps_rewritten\":11"),
            std::string::npos);
  EXPECT_NE(json.find("\"comment_word_fraction\":1.5"), std::string::npos);
  EXPECT_NE(json.find("\"rule_fires\":{\"A1.router-bgp\":12}"),
            std::string::npos);
}

}  // namespace
}  // namespace confanon::core
