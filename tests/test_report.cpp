#include "core/report.h"

#include <gtest/gtest.h>

namespace confanon::core {
namespace {

TEST(Report, CountRuleAccumulates) {
  AnonymizationReport report;
  report.CountRule("A1.router-bgp");
  report.CountRule("A1.router-bgp", 4);
  EXPECT_EQ(report.rule_fires.at("A1.router-bgp"), 5u);
}

TEST(Report, CommentWordFraction) {
  AnonymizationReport report;
  EXPECT_DOUBLE_EQ(report.CommentWordFraction(), 0.0);  // no words
  report.total_words = 200;
  report.comment_words_removed = 3;
  EXPECT_DOUBLE_EQ(report.CommentWordFraction(), 0.015);
}

TEST(Report, MergeAddsEverything) {
  AnonymizationReport a, b;
  a.total_lines = 10;
  a.words_hashed = 2;
  a.asns_mapped = 1;
  a.CountRule("T2.passlist-hash", 2);
  b.total_lines = 5;
  b.words_hashed = 3;
  b.addresses_mapped = 7;
  b.CountRule("T2.passlist-hash");
  b.CountRule("I1.map-addresses", 7);
  a.Merge(b);
  EXPECT_EQ(a.total_lines, 15u);
  EXPECT_EQ(a.words_hashed, 5u);
  EXPECT_EQ(a.asns_mapped, 1u);
  EXPECT_EQ(a.addresses_mapped, 7u);
  EXPECT_EQ(a.rule_fires.at("T2.passlist-hash"), 3u);
  EXPECT_EQ(a.rule_fires.at("I1.map-addresses"), 7u);
}

TEST(Report, ToStringMentionsKeyFields) {
  AnonymizationReport report;
  report.total_lines = 42;
  report.words_hashed = 7;
  report.CountRule("A6.as-path-regex");
  const std::string text = report.ToString();
  EXPECT_NE(text.find("lines=42"), std::string::npos);
  EXPECT_NE(text.find("words_hashed=7"), std::string::npos);
  EXPECT_NE(text.find("A6.as-path-regex"), std::string::npos);
}

}  // namespace
}  // namespace confanon::core
